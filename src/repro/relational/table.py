"""Column-oriented in-memory tables backed by typed numpy arrays."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TableError
from repro.relational.schema import Column, Schema, SourceDescription
from repro.relational.types import (
    NULL,
    DataType,
    coerce_column,
    infer_type,
    is_null,
    storage_to_list,
)

_COLUMN_OVERRIDE_KEYS = frozenset({"dtype", "is_key", "is_label", "description"})


def _owned(values: np.ndarray, raw) -> np.ndarray:
    """Copy ``values`` when coercion aliased the caller's array.

    Table storage is write-protected; without the copy, write-protecting an
    aliased array would freeze the caller's data, and writable views the
    caller already holds could mutate the "immutable" table storage (and
    silently invalidate the to_matrix cache).
    """
    if isinstance(raw, np.ndarray) and np.shares_memory(values, raw):
        return values.copy()
    return values


class Table:
    """An immutable, column-oriented relational table.

    Every column is a typed numpy array (``int64``/``float64``/``bool_`` for
    numeric and boolean columns, ``object`` for strings) paired with a boolean
    validity mask encoding NULLs. Coercion happens column-at-a-time at
    construction (:func:`repro.relational.types.coerce_column`), so building a
    table from arrays never touches Python per value. The class is the
    substrate under both the materialization path (joins) and the factorized
    path (per-source data matrices ``D_k``); numeric projections export to a
    cached, read-only matrix via :meth:`to_matrix`.
    """

    def __init__(self, name: str, schema: Schema, columns: Dict[str, Any]):
        if set(columns) != set(schema.names):
            raise TableError(
                f"column data {sorted(columns)} does not match schema {schema.names}"
            )
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise TableError(f"ragged columns with lengths {sorted(lengths)}")
        self._name = name
        self._schema = schema
        self._n_rows = lengths.pop() if lengths else 0
        self._data: Dict[str, np.ndarray] = {}
        self._valid: Dict[str, np.ndarray] = {}
        for column in schema:
            raw = columns[column.name]
            values, valid = coerce_column(raw, column.dtype)
            values = _owned(values, raw)
            values.setflags(write=False)
            valid.setflags(write=False)
            self._data[column.name] = values
            self._valid[column.name] = valid
        self._matrix_cache: Dict[Tuple, np.ndarray] = {}

    @classmethod
    def _from_storage(
        cls,
        name: str,
        schema: Schema,
        data: Dict[str, np.ndarray],
        valid: Dict[str, np.ndarray],
    ) -> "Table":
        """Trusted constructor from already-typed storage arrays (no coercion).

        Arrays are shared, not copied; they are marked read-only so sharing
        across derived tables (project/rename/...) is safe.
        """
        table = cls.__new__(cls)
        table._name = name
        table._schema = schema
        table._n_rows = len(next(iter(data.values()))) if data else 0
        table._data = {}
        table._valid = {}
        for column in schema:
            values = data[column.name]
            mask = valid[column.name]
            values.setflags(write=False)
            mask.setflags(write=False)
            table._data[column.name] = values
            table._valid[column.name] = mask
        table._matrix_cache = {}
        return table

    # -- constructors -------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[Any]],
    ) -> "Table":
        """Build a table from row tuples ordered like the schema."""
        rows = list(rows)
        for row in rows:
            if len(row) != len(schema):
                raise TableError(
                    f"row of width {len(row)} does not match schema of width {len(schema)}"
                )
        if rows:
            transposed = list(zip(*rows))
            columns = {
                column.name: list(transposed[i]) for i, column in enumerate(schema)
            }
        else:
            columns = {column.name: [] for column in schema}
        return cls(name, schema, columns)

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, Any], **column_kwargs: Dict[str, Any]) -> "Table":
        """Build a table from a column dict, inferring data types.

        Column values may be lists or numpy arrays (typed arrays skip
        per-value inference entirely). ``column_kwargs`` may carry per-column
        overrides, e.g. ``Table.from_dict("s1", data, m={"is_label": True})``;
        valid override keys are ``dtype``, ``is_key``, ``is_label`` and
        ``description`` — anything else (or an override for a column that does
        not exist) raises :class:`TableError`.
        """
        unknown_columns = set(column_kwargs) - set(data)
        if unknown_columns:
            raise TableError(
                f"column overrides for unknown columns: {sorted(unknown_columns)}"
            )
        columns = []
        for col_name, values in data.items():
            overrides = column_kwargs.get(col_name, {})
            unknown_keys = set(overrides) - _COLUMN_OVERRIDE_KEYS
            if unknown_keys:
                raise TableError(
                    f"unknown override keys {sorted(unknown_keys)} for column "
                    f"{col_name!r}; valid keys: {sorted(_COLUMN_OVERRIDE_KEYS)}"
                )
            dtype = overrides.get("dtype", infer_type(values))
            columns.append(
                Column(
                    col_name,
                    dtype,
                    is_key=overrides.get("is_key", False),
                    is_label=overrides.get("is_label", False),
                    description=overrides.get("description", ""),
                )
            )
        return cls(name, Schema(columns), dict(data))

    @classmethod
    def from_matrix(
        cls,
        name: str,
        matrix: np.ndarray,
        column_names: Optional[Sequence[str]] = None,
        label_column: Optional[str] = None,
    ) -> "Table":
        """Build a numeric table from a 2-D numpy array (NaN cells become NULL)."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise TableError(f"expected a 2-D matrix, got shape {matrix.shape}")
        n_cols = matrix.shape[1]
        if column_names is None:
            column_names = [f"c{i}" for i in range(n_cols)]
        if len(column_names) != n_cols:
            raise TableError("column_names length does not match matrix width")
        schema = Schema(
            [Column(col, DataType.FLOAT, is_label=(col == label_column)) for col in column_names]
        )
        # Explicit copies: a column slice can alias the caller's matrix.
        data = {col: matrix[:, i].copy() for i, col in enumerate(column_names)}
        valid = {col: ~np.isnan(data[col]) for col in column_names}
        return cls._from_storage(name, schema, data, valid)

    @classmethod
    def empty(cls, name: str, schema: Schema) -> "Table":
        return cls(name, schema, {column.name: [] for column in schema})

    # -- basic accessors -----------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self._schema)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n_rows, len(self._schema))

    def __len__(self) -> int:
        return self._n_rows

    def __repr__(self) -> str:
        return f"Table({self._name!r}, rows={self._n_rows}, cols={self._schema.names})"

    def column_values(self, name: str) -> np.ndarray:
        """The typed storage array of one column (read-only, shared).

        NULL positions hold a placeholder (0 / NaN / False / the sentinel);
        consult :meth:`column_valid` to distinguish them.
        """
        if name not in self._schema:
            raise TableError(f"table {self._name!r} has no column {name!r}")
        return self._data[name]

    def column_valid(self, name: str) -> np.ndarray:
        """Boolean validity mask of one column (True = non-NULL; read-only)."""
        if name not in self._schema:
            raise TableError(f"table {self._name!r} has no column {name!r}")
        return self._valid[name]

    def column(self, name: str) -> List[Any]:
        """Return the values of one column as a Python list (a copy)."""
        if name not in self._schema:
            raise TableError(f"table {self._name!r} has no column {name!r}")
        return storage_to_list(self._data[name], self._valid[name])

    def _cell(self, row: int, column: str) -> Any:
        if not self._valid[column][row]:
            return NULL
        value = self._data[column][row]
        return value.item() if isinstance(value, np.generic) else value

    def row(self, index: int) -> Tuple[Any, ...]:
        if not 0 <= index < self._n_rows:
            raise TableError(f"row index {index} out of range for {self._n_rows} rows")
        return tuple(self._cell(index, name) for name in self._schema.names)

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        for i in range(self._n_rows):
            yield self.row(i)

    def cell(self, row: int, column: str) -> Any:
        if not 0 <= row < self._n_rows:
            raise TableError(f"row index {row} out of range")
        if column not in self._schema:
            raise TableError(f"table {self._name!r} has no column {column!r}")
        return self._cell(row, column)

    # -- relational operators --------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Table":
        schema = self._schema.project(names)
        return Table._from_storage(
            self._name,
            schema,
            {name: self._data[name] for name in names},
            {name: self._valid[name] for name in names},
        )

    def drop(self, names: Iterable[str]) -> "Table":
        schema = self._schema.drop(names)
        return Table._from_storage(
            self._name,
            schema,
            {c.name: self._data[c.name] for c in schema},
            {c.name: self._valid[c.name] for c in schema},
        )

    def rename(self, renames: Dict[str, str]) -> "Table":
        schema = self._schema.rename(renames)
        data = {}
        valid = {}
        for old_name, column in zip(self._schema.names, schema):
            data[column.name] = self._data[old_name]
            valid[column.name] = self._valid[old_name]
        return Table._from_storage(self._name, schema, data, valid)

    def renamed_table(self, new_name: str) -> "Table":
        return Table._from_storage(new_name, self._schema, dict(self._data), dict(self._valid))

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Table":
        """Select rows where ``predicate(row_dict)`` is truthy."""
        columns = {name: self.column(name) for name in self._schema.names}
        keep = [
            i
            for i in range(self._n_rows)
            if predicate({name: columns[name][i] for name in self._schema.names})
        ]
        return self.take(keep)

    def take(self, indices: Sequence[int]) -> "Table":
        """Return a table containing the given row indices, in order."""
        raw = np.asarray(indices)
        if raw.size and raw.dtype.kind not in "iub":
            # Fail loudly on fractional/typed-wrong indices instead of
            # silently truncating through an int64 cast.
            raise TableError(f"row indices must be integers, got dtype {raw.dtype}")
        indices = raw.astype(np.int64) if raw.size else np.empty(0, dtype=np.int64)
        if indices.size:
            low = int(indices.min())
            high = int(indices.max())
            if low < 0 or high >= self._n_rows:
                bad = low if low < 0 else high
                raise TableError(f"row index {bad} out of range for {self._n_rows} rows")
        data = {name: self._data[name][indices] for name in self._schema.names}
        valid = {name: self._valid[name][indices] for name in self._schema.names}
        return Table._from_storage(self._name, self._schema, data, valid)

    def head(self, n: int = 5) -> "Table":
        return self.take(list(range(min(n, self._n_rows))))

    def row_slice(self, start: int, stop: int) -> "Table":
        """A contiguous row range ``[start, stop)`` as zero-copy views.

        Unlike :meth:`take` (which gathers, and therefore copies), basic
        slicing shares the storage buffers — this is what the chunk-stream
        adapters iterate large resident tables with.
        """
        start = max(0, min(int(start), self._n_rows))
        stop = max(start, min(int(stop), self._n_rows))
        data = {name: self._data[name][start:stop] for name in self._schema.names}
        valid = {name: self._valid[name][start:stop] for name in self._schema.names}
        return Table._from_storage(self._name, self._schema, data, valid)

    def with_column(self, column: Column, values: Sequence[Any]) -> "Table":
        if len(values) != self._n_rows:
            raise TableError("new column length does not match table")
        schema = self._schema.with_column(column)
        new_values, new_valid = coerce_column(values, column.dtype)
        new_values = _owned(new_values, values)
        data = dict(self._data)
        valid = dict(self._valid)
        data[column.name] = new_values
        valid[column.name] = new_valid
        return Table._from_storage(self._name, schema, data, valid)

    def set_roles(self, *, keys: Sequence[str] = (), label: Optional[str] = None) -> "Table":
        """Return a copy with key/label roles set on the named columns."""
        new_columns = []
        for column in self._schema:
            is_key = column.name in keys if keys else column.is_key
            is_label = (column.name == label) if label is not None else column.is_label
            new_columns.append(column.with_role(is_key=is_key, is_label=is_label))
        return Table._from_storage(
            self._name, Schema(new_columns), dict(self._data), dict(self._valid)
        )

    # -- analytics helpers -------------------------------------------------------------
    def null_ratio(self, column: Optional[str] = None) -> float:
        """Fraction of NULL cells in one column (or the whole table)."""
        if self._n_rows == 0:
            return 0.0
        if column is not None:
            return float(np.count_nonzero(~self._valid[column])) / self._n_rows
        total = self._n_rows * len(self._schema)
        nulls = sum(int(np.count_nonzero(~mask)) for mask in self._valid.values())
        return nulls / total if total else 0.0

    def distinct_values(self, column: str) -> set:
        values = self._data[column][self._valid[column]]
        return set(values.tolist())

    def to_matrix(
        self,
        columns: Optional[Sequence[str]] = None,
        null_value: float = 0.0,
    ) -> np.ndarray:
        """Export numeric columns to a dense float matrix (cached, read-only).

        NULLs are replaced by ``null_value`` (0.0 by default, matching the
        paper's Figure 4 where unmatched cells contribute zeros). The table is
        immutable, so repeated projections of the same columns return the
        same cached (write-protected) array — the executor's materialized
        path re-fits without re-extracting.
        """
        if columns is None:
            columns = [c.name for c in self._schema if c.dtype.is_numeric]
        columns = tuple(columns)
        cache_key = (columns, float(null_value))
        cached = self._matrix_cache.get(cache_key)
        if cached is not None:
            return cached
        for name in columns:
            if not self._schema[name].dtype.is_numeric:
                raise TableError(f"column {name!r} is not numeric")
        out = np.empty((self._n_rows, len(columns)), dtype=np.float64)
        for j, name in enumerate(columns):
            values = self._data[name]
            valid = self._valid[name]
            if bool(valid.all()):
                out[:, j] = values
            else:
                out[:, j] = np.where(valid, values, null_value)
        out.setflags(write=False)
        self._matrix_cache[cache_key] = out
        return out

    def to_rows(self) -> List[Tuple[Any, ...]]:
        return list(self.rows())

    def to_dict(self) -> Dict[str, List[Any]]:
        return {name: self.column(name) for name in self._schema.names}

    def describe(self, silo: str = "") -> SourceDescription:
        """Produce the basic-metadata record for the metadata catalog."""
        return SourceDescription(
            name=self._name,
            schema=self._schema,
            n_rows=self._n_rows,
            null_ratio={name: self.null_ratio(name) for name in self._schema.names},
            silo=silo,
        )

    def equals(self, other: "Table", *, check_name: bool = False) -> bool:
        """Structural equality on schema names, dtypes and cell values."""
        if check_name and self._name != other._name:
            return False
        if self._schema.names != other.schema.names:
            return False
        if self._n_rows != other.n_rows:
            return False
        for name in self._schema.names:
            if not bool(np.array_equal(self._valid[name], other._valid[name])):
                return False
            valid = self._valid[name]
            left, right = self._data[name], other._data[name]
            left_dtype = self._schema[name].dtype
            right_dtype = other.schema[name].dtype
            if left_dtype is DataType.INT and right_dtype is DataType.INT:
                # Integers compare exactly (isclose would blur large ids).
                if not bool(np.array_equal(left[valid], right[valid])):
                    return False
            elif left_dtype.is_numeric and right_dtype.is_numeric:
                a = np.asarray(left, dtype=np.float64)[valid]
                b = np.asarray(right, dtype=np.float64)[valid]
                if not bool(np.isclose(a, b).all()):
                    return False
            elif left_dtype is right_dtype and left_dtype is not DataType.STRING:
                if not bool(np.array_equal(left[valid], right[valid])):
                    return False
            else:
                for a, b in zip(storage_to_list(left, valid), storage_to_list(right, valid)):
                    if is_null(a) and is_null(b):
                        continue
                    if is_null(a) != is_null(b):
                        return False
                    if isinstance(a, float) or isinstance(b, float):
                        if not np.isclose(float(a), float(b)):
                            return False
                    elif a != b:
                        return False
        return True

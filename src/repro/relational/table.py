"""Column-oriented in-memory tables."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TableError
from repro.relational.schema import Column, Schema, SourceDescription
from repro.relational.types import NULL, DataType, coerce_value, infer_type, is_null


class Table:
    """An immutable, column-oriented relational table.

    Data is stored as one Python list per column; numeric projections are
    exported to numpy arrays on demand (:meth:`to_matrix`). The class is the
    substrate under both the materialization path (joins) and the factorized
    path (per-source data matrices ``D_k``).
    """

    def __init__(self, name: str, schema: Schema, columns: Dict[str, List[Any]]):
        if set(columns) != set(schema.names):
            raise TableError(
                f"column data {sorted(columns)} does not match schema {schema.names}"
            )
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise TableError(f"ragged columns with lengths {sorted(lengths)}")
        self._name = name
        self._schema = schema
        self._n_rows = lengths.pop() if lengths else 0
        self._columns: Dict[str, List[Any]] = {
            column.name: [coerce_value(v, column.dtype) for v in columns[column.name]]
            for column in schema
        }

    # -- constructors -------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[Any]],
    ) -> "Table":
        """Build a table from row tuples ordered like the schema."""
        rows = list(rows)
        columns: Dict[str, List[Any]] = {column.name: [] for column in schema}
        for row in rows:
            if len(row) != len(schema):
                raise TableError(
                    f"row of width {len(row)} does not match schema of width {len(schema)}"
                )
            for column, value in zip(schema, row):
                columns[column.name].append(value)
        return cls(name, schema, columns)

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, List[Any]], **column_kwargs: Dict[str, Any]) -> "Table":
        """Build a table from a column dict, inferring data types.

        ``column_kwargs`` may carry per-column overrides, e.g.
        ``Table.from_dict("s1", data, m={"is_label": True})``.
        """
        columns = []
        for col_name, values in data.items():
            overrides = column_kwargs.get(col_name, {})
            dtype = overrides.get("dtype", infer_type(values))
            columns.append(
                Column(
                    col_name,
                    dtype,
                    is_key=overrides.get("is_key", False),
                    is_label=overrides.get("is_label", False),
                    description=overrides.get("description", ""),
                )
            )
        return cls(name, Schema(columns), {k: list(v) for k, v in data.items()})

    @classmethod
    def from_matrix(
        cls,
        name: str,
        matrix: np.ndarray,
        column_names: Optional[Sequence[str]] = None,
        label_column: Optional[str] = None,
    ) -> "Table":
        """Build a numeric table from a 2-D numpy array."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise TableError(f"expected a 2-D matrix, got shape {matrix.shape}")
        n_cols = matrix.shape[1]
        if column_names is None:
            column_names = [f"c{i}" for i in range(n_cols)]
        if len(column_names) != n_cols:
            raise TableError("column_names length does not match matrix width")
        columns = [
            Column(col, DataType.FLOAT, is_label=(col == label_column)) for col in column_names
        ]
        data = {col: [NULL if np.isnan(v) else float(v) for v in matrix[:, i]]
                for i, col in enumerate(column_names)}
        return cls(name, Schema(columns), data)

    @classmethod
    def empty(cls, name: str, schema: Schema) -> "Table":
        return cls(name, schema, {column.name: [] for column in schema})

    # -- basic accessors -----------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self._schema)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n_rows, len(self._schema))

    def __len__(self) -> int:
        return self._n_rows

    def __repr__(self) -> str:
        return f"Table({self._name!r}, rows={self._n_rows}, cols={self._schema.names})"

    def column(self, name: str) -> List[Any]:
        """Return the values of one column (a copy)."""
        if name not in self._schema:
            raise TableError(f"table {self._name!r} has no column {name!r}")
        return list(self._columns[name])

    def row(self, index: int) -> Tuple[Any, ...]:
        if not 0 <= index < self._n_rows:
            raise TableError(f"row index {index} out of range for {self._n_rows} rows")
        return tuple(self._columns[name][index] for name in self._schema.names)

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        for i in range(self._n_rows):
            yield self.row(i)

    def cell(self, row: int, column: str) -> Any:
        if not 0 <= row < self._n_rows:
            raise TableError(f"row index {row} out of range")
        return self._columns[column][row]

    # -- relational operators --------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Table":
        schema = self._schema.project(names)
        return Table(self._name, schema, {name: list(self._columns[name]) for name in names})

    def drop(self, names: Iterable[str]) -> "Table":
        schema = self._schema.drop(names)
        return Table(
            self._name, schema, {c.name: list(self._columns[c.name]) for c in schema}
        )

    def rename(self, renames: Dict[str, str]) -> "Table":
        schema = self._schema.rename(renames)
        data = {}
        for old_name, column in zip(self._schema.names, schema):
            data[column.name] = list(self._columns[old_name])
        return Table(self._name, schema, data)

    def renamed_table(self, new_name: str) -> "Table":
        return Table(new_name, self._schema, {k: list(v) for k, v in self._columns.items()})

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Table":
        """Select rows where ``predicate(row_dict)`` is truthy."""
        keep = [
            i
            for i in range(self._n_rows)
            if predicate({name: self._columns[name][i] for name in self._schema.names})
        ]
        return self.take(keep)

    def take(self, indices: Sequence[int]) -> "Table":
        """Return a table containing the given row indices, in order."""
        for i in indices:
            if not 0 <= i < self._n_rows:
                raise TableError(f"row index {i} out of range for {self._n_rows} rows")
        data = {
            name: [self._columns[name][i] for i in indices] for name in self._schema.names
        }
        return Table(self._name, self._schema, data)

    def head(self, n: int = 5) -> "Table":
        return self.take(list(range(min(n, self._n_rows))))

    def with_column(self, column: Column, values: Sequence[Any]) -> "Table":
        if len(values) != self._n_rows:
            raise TableError("new column length does not match table")
        schema = self._schema.with_column(column)
        data = {k: list(v) for k, v in self._columns.items()}
        data[column.name] = list(values)
        return Table(self._name, schema, data)

    def set_roles(self, *, keys: Sequence[str] = (), label: Optional[str] = None) -> "Table":
        """Return a copy with key/label roles set on the named columns."""
        new_columns = []
        for column in self._schema:
            is_key = column.name in keys if keys else column.is_key
            is_label = (column.name == label) if label is not None else column.is_label
            new_columns.append(column.with_role(is_key=is_key, is_label=is_label))
        return Table(self._name, Schema(new_columns), {k: list(v) for k, v in self._columns.items()})

    # -- analytics helpers -------------------------------------------------------------
    def null_ratio(self, column: Optional[str] = None) -> float:
        """Fraction of NULL cells in one column (or the whole table)."""
        if self._n_rows == 0:
            return 0.0
        if column is not None:
            values = self._columns[column]
            return sum(1 for v in values if is_null(v)) / self._n_rows
        total = self._n_rows * len(self._schema)
        nulls = sum(
            1 for values in self._columns.values() for v in values if is_null(v)
        )
        return nulls / total if total else 0.0

    def distinct_values(self, column: str) -> set:
        return {v for v in self._columns[column] if not is_null(v)}

    def to_matrix(
        self,
        columns: Optional[Sequence[str]] = None,
        null_value: float = 0.0,
    ) -> np.ndarray:
        """Export numeric columns to a dense float matrix.

        NULLs are replaced by ``null_value`` (0.0 by default, matching the
        paper's Figure 4 where unmatched cells contribute zeros).
        """
        if columns is None:
            columns = [c.name for c in self._schema if c.dtype.is_numeric]
        for name in columns:
            if not self._schema[name].dtype.is_numeric:
                raise TableError(f"column {name!r} is not numeric")
        out = np.empty((self._n_rows, len(columns)), dtype=float)
        for j, name in enumerate(columns):
            values = self._columns[name]
            out[:, j] = [null_value if is_null(v) else float(v) for v in values]
        return out

    def to_rows(self) -> List[Tuple[Any, ...]]:
        return list(self.rows())

    def to_dict(self) -> Dict[str, List[Any]]:
        return {name: list(values) for name, values in self._columns.items()}

    def describe(self, silo: str = "") -> SourceDescription:
        """Produce the basic-metadata record for the metadata catalog."""
        return SourceDescription(
            name=self._name,
            schema=self._schema,
            n_rows=self._n_rows,
            null_ratio={name: self.null_ratio(name) for name in self._schema.names},
            silo=silo,
        )

    def equals(self, other: "Table", *, check_name: bool = False) -> bool:
        """Structural equality on schema names, dtypes and cell values."""
        if check_name and self._name != other._name:
            return False
        if self._schema.names != other.schema.names:
            return False
        if self._n_rows != other.n_rows:
            return False
        for name in self._schema.names:
            left, right = self._columns[name], other._columns[name]
            for a, b in zip(left, right):
                if is_null(a) and is_null(b):
                    continue
                if is_null(a) != is_null(b):
                    return False
                if isinstance(a, float) or isinstance(b, float):
                    if not np.isclose(float(a), float(b)):
                        return False
                elif a != b:
                    return False
        return True

"""Join operators with row provenance.

The Amalur paper (Table I) characterizes the dataset relationships that
matter for ML over silos as four join flavours: full outer join, inner
join, left join and union. The operators here return a :class:`JoinResult`
that, besides the materialized target table, records *row provenance*: for
every output row, which source row (if any) of each input produced it.
That provenance is exactly what the indicator matrices of Section III-B
encode, so the matrix builder derives ``I_k`` from these results and the
property tests can check that factorized reconstruction equals the join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import JoinError
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import NULL, is_null


@dataclass
class JoinResult:
    """Result of a two-table integration operator.

    Attributes
    ----------
    table:
        The materialized target table ``T``.
    left_rows / right_rows:
        For each output row, the index of the originating row in the left /
        right input, or ``-1`` when the output row has no counterpart there
        (e.g. right-only rows of a full outer join).
    left_columns / right_columns:
        For each target column, the name of the source column it was taken
        from, or ``None`` when the source does not map that column.
    """

    table: Table
    left_rows: List[int]
    right_rows: List[int]
    left_columns: Dict[str, Optional[str]] = field(default_factory=dict)
    right_columns: Dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def n_overlapping_rows(self) -> int:
        return sum(
            1
            for left, right in zip(self.left_rows, self.right_rows)
            if left >= 0 and right >= 0
        )


def _key_tuple(table: Table, row: int, keys: Sequence[str]) -> Tuple[Any, ...]:
    values = tuple(table.cell(row, k) for k in keys)
    if any(is_null(v) for v in values):
        return ("__null__", row)  # NULL keys never match anything
    return values


def _build_key_index(table: Table, keys: Sequence[str]) -> Dict[Tuple[Any, ...], List[int]]:
    index: Dict[Tuple[Any, ...], List[int]] = {}
    for i in range(table.n_rows):
        index.setdefault(_key_tuple(table, i, keys), []).append(i)
    return index


def _validate_join_inputs(
    left: Table,
    right: Table,
    on: Sequence[str],
    target_columns: Sequence[str],
) -> None:
    if not on:
        raise JoinError("join requires at least one key column")
    for key in on:
        if key not in left.schema:
            raise JoinError(f"left table {left.name!r} missing join key {key!r}")
        if key not in right.schema:
            raise JoinError(f"right table {right.name!r} missing join key {key!r}")
    for name in target_columns:
        if name not in left.schema and name not in right.schema:
            raise JoinError(f"target column {name!r} exists in neither input")


def _default_target_columns(left: Table, right: Table) -> List[str]:
    names = list(left.schema.names)
    names.extend(name for name in right.schema.names if name not in names)
    return names


def _target_schema(
    left: Table, right: Table, target_columns: Sequence[str], name: str
) -> Schema:
    columns: List[Column] = []
    for col_name in target_columns:
        if col_name in left.schema:
            source = left.schema[col_name]
        else:
            source = right.schema[col_name]
        columns.append(source)
    return Schema(columns)


def _emit_row(
    left: Table,
    right: Table,
    left_row: int,
    right_row: int,
    target_columns: Sequence[str],
    prefer_left: bool = True,
) -> List[Any]:
    """Produce one output row, filling from the preferred side first."""
    out: List[Any] = []
    for name in target_columns:
        value = NULL
        in_left = name in left.schema and left_row >= 0
        in_right = name in right.schema and right_row >= 0
        if prefer_left:
            if in_left:
                value = left.cell(left_row, name)
            if is_null(value) and in_right:
                value = right.cell(right_row, name)
        else:
            if in_right:
                value = right.cell(right_row, name)
            if is_null(value) and in_left:
                value = left.cell(left_row, name)
        out.append(value)
    return out


def _column_provenance(table: Table, target_columns: Sequence[str]) -> Dict[str, Optional[str]]:
    return {name: (name if name in table.schema else None) for name in target_columns}


def _join(
    left: Table,
    right: Table,
    on: Sequence[str],
    target_columns: Optional[Sequence[str]],
    *,
    keep_left_unmatched: bool,
    keep_right_unmatched: bool,
    result_name: str,
) -> JoinResult:
    if target_columns is None:
        target_columns = _default_target_columns(left, right)
    _validate_join_inputs(left, right, on, target_columns)
    schema = _target_schema(left, right, target_columns, result_name)
    right_index = _build_key_index(right, on)

    rows: List[List[Any]] = []
    left_rows: List[int] = []
    right_rows: List[int] = []
    matched_right: set = set()

    for i in range(left.n_rows):
        key = _key_tuple(left, i, on)
        matches = right_index.get(key, [])
        real_matches = [j for j in matches if key[0] != "__null__"]
        if real_matches:
            for j in real_matches:
                rows.append(_emit_row(left, right, i, j, target_columns))
                left_rows.append(i)
                right_rows.append(j)
                matched_right.add(j)
        elif keep_left_unmatched:
            rows.append(_emit_row(left, right, i, -1, target_columns))
            left_rows.append(i)
            right_rows.append(-1)

    if keep_right_unmatched:
        for j in range(right.n_rows):
            if j in matched_right:
                continue
            rows.append(_emit_row(left, right, -1, j, target_columns))
            left_rows.append(-1)
            right_rows.append(j)

    table = Table.from_rows(result_name, schema, rows)
    return JoinResult(
        table=table,
        left_rows=left_rows,
        right_rows=right_rows,
        left_columns=_column_provenance(left, target_columns),
        right_columns=_column_provenance(right, target_columns),
    )


def inner_join(
    left: Table,
    right: Table,
    on: Sequence[str],
    target_columns: Optional[Sequence[str]] = None,
    result_name: str = "T",
) -> JoinResult:
    """Inner join (Table I, Example 2): only matched rows survive."""
    return _join(
        left,
        right,
        on,
        target_columns,
        keep_left_unmatched=False,
        keep_right_unmatched=False,
        result_name=result_name,
    )


def left_join(
    left: Table,
    right: Table,
    on: Sequence[str],
    target_columns: Optional[Sequence[str]] = None,
    result_name: str = "T",
) -> JoinResult:
    """Left join (Table I, Example 3): all left rows, matched right values."""
    return _join(
        left,
        right,
        on,
        target_columns,
        keep_left_unmatched=True,
        keep_right_unmatched=False,
        result_name=result_name,
    )


def full_outer_join(
    left: Table,
    right: Table,
    on: Sequence[str],
    target_columns: Optional[Sequence[str]] = None,
    result_name: str = "T",
) -> JoinResult:
    """Full outer join (Table I, Example 1): all rows of both inputs."""
    return _join(
        left,
        right,
        on,
        target_columns,
        keep_left_unmatched=True,
        keep_right_unmatched=True,
        result_name=result_name,
    )


def union_all(
    left: Table,
    right: Table,
    target_columns: Optional[Sequence[str]] = None,
    result_name: str = "T",
) -> JoinResult:
    """Union (Table I, Example 4): stack rows of sources that share columns."""
    if target_columns is None:
        target_columns = [
            name for name in left.schema.names if name in right.schema
        ]
        if not target_columns:
            raise JoinError("union requires at least one shared column")
    for name in target_columns:
        if name not in left.schema or name not in right.schema:
            raise JoinError(f"union target column {name!r} missing from one input")
    schema = Schema([left.schema[name] for name in target_columns])
    rows: List[List[Any]] = []
    left_rows: List[int] = []
    right_rows: List[int] = []
    for i in range(left.n_rows):
        rows.append([left.cell(i, name) for name in target_columns])
        left_rows.append(i)
        right_rows.append(-1)
    for j in range(right.n_rows):
        rows.append([right.cell(j, name) for name in target_columns])
        left_rows.append(-1)
        right_rows.append(j)
    table = Table.from_rows(result_name, schema, rows)
    return JoinResult(
        table=table,
        left_rows=left_rows,
        right_rows=right_rows,
        left_columns={name: name for name in target_columns},
        right_columns={name: name for name in target_columns},
    )

"""Vectorized join operators with row provenance.

The Amalur paper (Table I) characterizes the dataset relationships that
matter for ML over silos as four join flavours: full outer join, inner
join, left join and union. The operators here return a :class:`JoinResult`
that, besides the materialized target table, records *row provenance*: for
every output row, which source row (if any) of each input produced it.
That provenance is exactly what the indicator matrices of Section III-B
encode, so the matrix builder derives ``I_k`` from these results and the
property tests can check that factorized reconstruction equals the join.

All four flavours execute as hash joins over factorized key codes
(:mod:`repro.relational.factorize`): keys are mapped into a shared integer
code space with ``np.unique``, matched with ``np.searchsorted``, and the
output columns are materialized column-at-a-time from the inputs' typed
storage arrays — no Python loop ever touches an individual row. NULL and
duplicate-key semantics match the row-at-a-time implementation exactly:
NULL keys never match (not even each other), duplicate keys expand
combinatorially in left-row-major / right-row order, and overlapping
columns prefer the left (base) value, falling back to the right value when
the left one is NULL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import telemetry as _telemetry
from repro.exceptions import JoinError
from repro.relational.factorize import gather_column, hash_join_index, key_codes
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import (
    _STORAGE_DTYPE,
    NULL,
    DataType,
    coerce_column,
    int_exact_cast,
    null_placeholder,
)


@dataclass
class JoinResult:
    """Result of a two-table integration operator.

    Attributes
    ----------
    table:
        The materialized target table ``T``.
    left_rows / right_rows:
        For each output row, the index of the originating row in the left /
        right input, or ``-1`` when the output row has no counterpart there
        (e.g. right-only rows of a full outer join).
    left_columns / right_columns:
        For each target column, the name of the source column it was taken
        from, or ``None`` when the source does not map that column.
    """

    table: Table
    left_rows: List[int]
    right_rows: List[int]
    left_columns: Dict[str, Optional[str]] = field(default_factory=dict)
    right_columns: Dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def left_row_array(self) -> np.ndarray:
        """Left provenance as an int64 array (for the vectorized builder)."""
        return np.asarray(self.left_rows, dtype=np.int64)

    @property
    def right_row_array(self) -> np.ndarray:
        """Right provenance as an int64 array (for the vectorized builder)."""
        return np.asarray(self.right_rows, dtype=np.int64)

    @property
    def n_overlapping_rows(self) -> int:
        return int(
            np.count_nonzero((self.left_row_array >= 0) & (self.right_row_array >= 0))
        )


def _validate_join_inputs(
    left: Table,
    right: Table,
    on: Sequence[str],
    target_columns: Sequence[str],
) -> None:
    if not on:
        raise JoinError("join requires at least one key column")
    for key in on:
        if key not in left.schema:
            raise JoinError(f"left table {left.name!r} missing join key {key!r}")
        if key not in right.schema:
            raise JoinError(f"right table {right.name!r} missing join key {key!r}")
    for name in target_columns:
        if name not in left.schema and name not in right.schema:
            raise JoinError(f"target column {name!r} exists in neither input")


def _default_target_columns(left: Table, right: Table) -> List[str]:
    names = list(left.schema.names)
    names.extend(name for name in right.schema.names if name not in names)
    return names


def _target_schema(left: Table, right: Table, target_columns: Sequence[str]) -> Schema:
    columns: List[Column] = []
    for col_name in target_columns:
        if col_name in left.schema:
            source = left.schema[col_name]
        else:
            source = right.schema[col_name]
        columns.append(source)
    return Schema(columns)


def _column_provenance(table: Table, target_columns: Sequence[str]) -> Dict[str, Optional[str]]:
    return {name: (name if name in table.schema else None) for name in target_columns}


def _canonical_storage(values, valid, dtype: DataType):
    """Force placeholder values at invalid positions so storage is canonical."""
    if bool(valid.all()):
        return values
    if dtype is DataType.STRING:
        return np.where(valid, values, NULL)
    return np.where(valid, values, null_placeholder(dtype))


def _combine_column(
    column: Column,
    primary,  # (values, valid, dtype) of the preferred side, or None
    secondary,  # (values, valid, dtype) of the fallback side, or None
    n_rows: int,
):
    """Merge up to two gathered source columns into target storage.

    Reproduces the per-cell rule of the row-at-a-time join: take the
    preferred side's value, fall back to the other side when it is NULL,
    coercing to the target column's dtype (same :class:`SchemaError`
    conditions as scalar coercion).
    """
    target_dtype = column.dtype
    if primary is None and secondary is None:
        values = np.full(
            n_rows, null_placeholder(target_dtype), dtype=_STORAGE_DTYPE[target_dtype]
        )
        return values, np.zeros(n_rows, dtype=bool)

    sides = [s for s in (primary, secondary) if s is not None]

    if len(sides) == 1:
        values, valid, source_dtype = sides[0]
        if source_dtype is target_dtype:
            return _canonical_storage(values, valid, target_dtype), valid
        return _recoerce(values, valid, source_dtype, target_dtype)

    (p_values, p_valid, p_dtype), (s_values, s_valid, s_dtype) = sides
    out_valid = p_valid | s_valid
    if p_dtype is s_dtype is target_dtype:
        merged = np.where(p_valid, p_values, s_values)
        return _canonical_storage(merged, out_valid, target_dtype), out_valid
    if (
        p_dtype.is_numeric or p_dtype is DataType.BOOL
    ) and (s_dtype.is_numeric or s_dtype is DataType.BOOL) and (
        target_dtype.is_numeric
    ):
        if target_dtype is DataType.INT:
            # Merge exactly in int64: a float64 round-trip would corrupt
            # integers above 2**53. Only the cells actually chosen from a
            # side are coerced, matching the per-cell seed semantics.
            merged = np.zeros(n_rows, dtype=np.int64)
            for (values, _, dtype), selection in (
                ((p_values, p_valid, p_dtype), p_valid),
                ((s_values, s_valid, s_dtype), ~p_valid & s_valid),
            ):
                if not bool(selection.any()):
                    continue
                chosen = values[selection]
                if np.asarray(chosen).dtype.kind == "f":
                    merged[selection] = int_exact_cast(
                        np.asarray(chosen, dtype=np.float64)
                    )
                else:
                    merged[selection] = np.asarray(chosen).astype(np.int64)
            return merged, out_valid
        merged = np.where(
            p_valid,
            np.asarray(p_values, dtype=np.float64),
            np.asarray(s_values, dtype=np.float64),
        )
        return _recoerce(merged, out_valid, DataType.FLOAT, target_dtype)
    # Mixed value classes (e.g. strings merged into a numeric column):
    # object-level merge, then the generic column coercion.
    p_obj = _canonical_storage(np.asarray(p_values, dtype=object), p_valid, DataType.STRING)
    s_obj = _canonical_storage(np.asarray(s_values, dtype=object), s_valid, DataType.STRING)
    merged = np.where(p_valid, p_obj, np.where(s_valid, s_obj, NULL))
    return coerce_column(merged, target_dtype)


def _recoerce(values, valid, source_dtype: DataType, target_dtype: DataType):
    """Coerce typed storage to another dtype, preserving the validity mask."""
    if target_dtype is DataType.FLOAT and (
        source_dtype.is_numeric or source_dtype is DataType.BOOL
    ):
        out = np.asarray(values, dtype=np.float64)
        return _canonical_storage(out, valid, target_dtype), valid
    if target_dtype is DataType.INT and (
        source_dtype.is_numeric or source_dtype is DataType.BOOL
    ):
        as_float = np.asarray(values, dtype=np.float64).copy()
        as_float[~valid] = np.nan
        coerced, _ = coerce_column(as_float, target_dtype)
        return coerced, valid
    obj = _canonical_storage(np.asarray(values, dtype=object), valid, DataType.STRING)
    return coerce_column(obj, target_dtype)


def _materialize_join_table(
    left: Table,
    right: Table,
    left_rows: np.ndarray,
    right_rows: np.ndarray,
    target_columns: Sequence[str],
    schema: Schema,
    result_name: str,
) -> Table:
    n_rows = left_rows.size
    data: Dict[str, np.ndarray] = {}
    valid: Dict[str, np.ndarray] = {}
    for column in schema:
        name = column.name
        primary = None
        secondary = None
        if name in left.schema:
            values, mask = gather_column(left, name, left_rows)
            primary = (values, mask, left.schema[name].dtype)
        if name in right.schema:
            values, mask = gather_column(right, name, right_rows)
            secondary = (values, mask, right.schema[name].dtype)
        merged, merged_valid = _combine_column(column, primary, secondary, n_rows)
        data[name] = np.ascontiguousarray(merged)
        valid[name] = np.ascontiguousarray(merged_valid)
    return Table._from_storage(result_name, schema, data, valid)


def _join(
    left: Table,
    right: Table,
    on: Sequence[str],
    target_columns: Optional[Sequence[str]],
    *,
    keep_left_unmatched: bool,
    keep_right_unmatched: bool,
    result_name: str,
    flavor: str,
) -> JoinResult:
    if target_columns is None:
        target_columns = _default_target_columns(left, right)
    _validate_join_inputs(left, right, on, target_columns)
    schema = _target_schema(left, right, target_columns)

    with _telemetry.span(
        f"join.{flavor}", left_rows=left.n_rows, right_rows=right.n_rows
    ) as span:
        left_codes, right_codes = key_codes(left, right, [(k, k) for k in on])
        left_rows, right_rows, matched_right = hash_join_index(
            left_codes, right_codes, keep_left_unmatched=keep_left_unmatched
        )
        if keep_right_unmatched:
            extra = np.nonzero(~matched_right)[0].astype(np.int64)
            left_rows = np.concatenate(
                [left_rows, np.full(extra.size, -1, dtype=np.int64)]
            )
            right_rows = np.concatenate([right_rows, extra])

        table = _materialize_join_table(
            left, right, left_rows, right_rows, target_columns, schema, result_name
        )
        span.set(out_rows=table.n_rows, out_cols=len(target_columns))
    return JoinResult(
        table=table,
        left_rows=left_rows.tolist(),
        right_rows=right_rows.tolist(),
        left_columns=_column_provenance(left, target_columns),
        right_columns=_column_provenance(right, target_columns),
    )


def inner_join(
    left: Table,
    right: Table,
    on: Sequence[str],
    target_columns: Optional[Sequence[str]] = None,
    result_name: str = "T",
) -> JoinResult:
    """Inner join (Table I, Example 2): only matched rows survive."""
    return _join(
        left,
        right,
        on,
        target_columns,
        keep_left_unmatched=False,
        keep_right_unmatched=False,
        result_name=result_name,
        flavor="inner",
    )


def left_join(
    left: Table,
    right: Table,
    on: Sequence[str],
    target_columns: Optional[Sequence[str]] = None,
    result_name: str = "T",
) -> JoinResult:
    """Left join (Table I, Example 3): all left rows, matched right values."""
    return _join(
        left,
        right,
        on,
        target_columns,
        keep_left_unmatched=True,
        keep_right_unmatched=False,
        result_name=result_name,
        flavor="left",
    )


def full_outer_join(
    left: Table,
    right: Table,
    on: Sequence[str],
    target_columns: Optional[Sequence[str]] = None,
    result_name: str = "T",
) -> JoinResult:
    """Full outer join (Table I, Example 1): all rows of both inputs."""
    return _join(
        left,
        right,
        on,
        target_columns,
        keep_left_unmatched=True,
        keep_right_unmatched=True,
        result_name=result_name,
        flavor="full_outer",
    )


def union_all(
    left: Table,
    right: Table,
    target_columns: Optional[Sequence[str]] = None,
    result_name: str = "T",
) -> JoinResult:
    """Union (Table I, Example 4): stack rows of sources that share columns."""
    if target_columns is None:
        target_columns = [
            name for name in left.schema.names if name in right.schema
        ]
        if not target_columns:
            raise JoinError("union requires at least one shared column")
    for name in target_columns:
        if name not in left.schema or name not in right.schema:
            raise JoinError(f"union target column {name!r} missing from one input")
    schema = Schema([left.schema[name] for name in target_columns])
    with _telemetry.span(
        "join.union", left_rows=left.n_rows, right_rows=right.n_rows
    ) as span:
        left_rows = np.concatenate(
            [
                np.arange(left.n_rows, dtype=np.int64),
                np.full(right.n_rows, -1, dtype=np.int64),
            ]
        )
        right_rows = np.concatenate(
            [
                np.full(left.n_rows, -1, dtype=np.int64),
                np.arange(right.n_rows, dtype=np.int64),
            ]
        )
        table = _materialize_join_table(
            left, right, left_rows, right_rows, target_columns, schema, result_name
        )
        span.set(out_rows=table.n_rows, out_cols=len(target_columns))
    return JoinResult(
        table=table,
        left_rows=left_rows.tolist(),
        right_rows=right_rows.tolist(),
        left_columns={name: name for name in target_columns},
        right_columns={name: name for name in target_columns},
    )

"""CSV import/export for the relational substrate."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.exceptions import TableError
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import NULL, infer_type, is_null, parse_cell

PathLike = Union[str, Path]


def read_csv(
    path: PathLike,
    name: Optional[str] = None,
    key_columns: Sequence[str] = (),
    label_column: Optional[str] = None,
    delimiter: str = ",",
) -> Table:
    """Read a CSV file into a :class:`Table`, inferring column types.

    Empty cells and the literals ``null``/``none``/``na``/``nan`` become NULL.
    """
    path = Path(path)
    if name is None:
        name = path.stem
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise TableError(f"CSV file {path} is empty") from exc
        raw_rows = [row for row in reader if row]

    columns = {col: [] for col in header}
    for row in raw_rows:
        if len(row) != len(header):
            raise TableError(
                f"CSV row width {len(row)} does not match header width {len(header)}"
            )
        for col, cell in zip(header, row):
            columns[col].append(parse_cell(cell))

    schema = Schema(
        [
            Column(
                col,
                infer_type(columns[col]),
                is_key=col in key_columns,
                is_label=(col == label_column),
            )
            for col in header
        ]
    )
    return Table(name, schema, columns)


def write_csv(table: Table, path: PathLike, delimiter: str = ",") -> None:
    """Write a :class:`Table` to CSV; NULLs become empty cells."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.schema.names)
        for row in table.rows():
            writer.writerow(["" if is_null(v) else v for v in row])

"""CSV import/export for the relational substrate.

``read_csv`` routes through the chunked columnar reader
(:class:`repro.streaming.ingest.ChunkedCsvReader`): the file is parsed
block-at-a-time straight into typed numpy columns + validity masks, so
in-memory ingest no longer builds per-cell Python lists. The empty-file and
row-width :class:`TableError` behavior of the seed reader is preserved
bit-for-bit.

``write_csv`` protects STRING values that would otherwise re-parse as a
different type — NULL literals (``"null"``, ``"na"``, the empty string,
...), numeric-looking strings (``"5"``, ``"1e3"``) and bool literals
(``"true"``) — with a one-backslash escape that ``parse_cell`` undoes, so
write → read round-trips keep them as strings.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.relational.table import Table
from repro.relational.types import NULL_LITERALS, DataType, _parse_string, is_null

PathLike = Union[str, Path]


def read_csv(
    path: PathLike,
    name: Optional[str] = None,
    key_columns: Sequence[str] = (),
    label_column: Optional[str] = None,
    delimiter: str = ",",
) -> Table:
    """Read a CSV file into a :class:`Table`, inferring column types.

    Empty cells and the literals ``null``/``none``/``na``/``nan`` become
    NULL. This is the single-pass fast path of the chunked reader; use
    :class:`repro.streaming.ingest.ChunkedCsvReader` directly for
    bounded-memory streaming over files larger than RAM.
    """
    from repro.streaming.ingest import ChunkedCsvReader

    return ChunkedCsvReader(
        path,
        name=name,
        key_columns=key_columns,
        label_column=label_column,
        delimiter=delimiter,
    ).read()


def _protect_string(value: str) -> str:
    """Backslash-escape strings ``parse_cell`` would misread as another type.

    Covers NULL literals, values that already start with a backslash, and
    strings shaped like numbers or bools (``"5"``, ``"-1e3"``, ``"true"``)
    that the reader would otherwise re-type.
    """
    if value.startswith("\\") or value.strip().lower() in NULL_LITERALS:
        return "\\" + value
    if not isinstance(_parse_string(value), str):
        return "\\" + value
    return value


def _write_protected_rows(writer, names, string_columns, rows) -> None:
    """Stream ``rows`` through the NULL/typing escape protection."""
    for row in rows:
        writer.writerow(
            [
                ""
                if is_null(value)
                else (
                    _protect_string(value)
                    if name in string_columns and isinstance(value, str)
                    else value
                )
                for name, value in zip(names, row)
            ]
        )


def write_csv(table, path: PathLike, delimiter: str = ",") -> None:
    """Write a :class:`Table` or chunk stream to CSV; NULLs become empty cells.

    STRING values spelled like a NULL literal (``"null"``, ``"na"``, the
    empty string, whitespace), like a number or bool (``"5"``, ``"true"``),
    or already starting with a backslash are written with a
    single-backslash escape so a subsequent ``read_csv`` returns them as
    strings with their spelling intact.

    ``table`` may also be a :class:`repro.streaming.chunks.TableChunkStream`
    — the output is then produced one chunk at a time, so a stream larger
    than RAM round-trips through CSV in bounded memory.
    """
    import csv

    from repro.streaming.chunks import TableChunkStream

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if isinstance(table, TableChunkStream):
        schema = table.schema
        row_source = (
            row for chunk in table.chunks() for row in chunk.to_table(table.name).rows()
        )
    else:
        schema = table.schema
        row_source = table.rows()
    string_columns = {
        column.name for column in schema if column.dtype is DataType.STRING
    }
    names = schema.names
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(names)
        _write_protected_rows(writer, names, string_columns, row_source)

"""CSV import/export for the relational substrate.

``read_csv`` routes through the chunked columnar reader
(:class:`repro.streaming.ingest.ChunkedCsvReader`): the file is parsed
block-at-a-time straight into typed numpy columns + validity masks, so
in-memory ingest no longer builds per-cell Python lists. The empty-file and
row-width :class:`TableError` behavior of the seed reader is preserved
bit-for-bit.

``write_csv`` protects STRING values that would otherwise re-parse as NULL
(``"null"``, ``"na"``, the empty string, ...) with a one-backslash escape
that ``parse_cell`` undoes, so write → read round-trips keep them as
strings.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.relational.table import Table
from repro.relational.types import NULL_LITERALS, DataType, is_null

PathLike = Union[str, Path]


def read_csv(
    path: PathLike,
    name: Optional[str] = None,
    key_columns: Sequence[str] = (),
    label_column: Optional[str] = None,
    delimiter: str = ",",
) -> Table:
    """Read a CSV file into a :class:`Table`, inferring column types.

    Empty cells and the literals ``null``/``none``/``na``/``nan`` become
    NULL. This is the single-pass fast path of the chunked reader; use
    :class:`repro.streaming.ingest.ChunkedCsvReader` directly for
    bounded-memory streaming over files larger than RAM.
    """
    from repro.streaming.ingest import ChunkedCsvReader

    return ChunkedCsvReader(
        path,
        name=name,
        key_columns=key_columns,
        label_column=label_column,
        delimiter=delimiter,
    ).read()


def _protect_string(value: str) -> str:
    """Backslash-escape strings ``parse_cell`` would misread as NULL."""
    if value.startswith("\\") or value.strip().lower() in NULL_LITERALS:
        return "\\" + value
    return value


def write_csv(table: Table, path: PathLike, delimiter: str = ",") -> None:
    """Write a :class:`Table` to CSV; NULLs become empty cells.

    STRING values spelled like a NULL literal (``"null"``, ``"na"``, the
    empty string, whitespace) — and strings already starting with a
    backslash — are written with a single-backslash escape so a subsequent
    ``read_csv`` returns them as strings, not NULL.
    """
    import csv

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    string_columns = {
        column.name for column in table.schema if column.dtype is DataType.STRING
    }
    names = table.schema.names
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(names)
        for row in table.rows():
            writer.writerow(
                [
                    ""
                    if is_null(value)
                    else (
                        _protect_string(value)
                        if name in string_columns and isinstance(value, str)
                        else value
                    )
                    for name, value in zip(names, row)
                ]
            )

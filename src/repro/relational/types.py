"""Value types for the relational substrate.

The substrate supports the four types a tabular ML pipeline needs:
integers, floats, strings and booleans, plus an explicit ``NULL`` sentinel
that survives joins and is distinguishable from ``0``/``""``/``False``.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Iterable, Optional, Tuple

import numpy as np

from repro.exceptions import SchemaError


class _NullType:
    """Singleton sentinel for SQL-style NULL values."""

    _instance: Optional["_NullType"] = None

    def __new__(cls) -> "_NullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __eq__(self, other: Any) -> bool:
        return other is self or isinstance(other, _NullType)

    def __hash__(self) -> int:
        return hash("__amalur_null__")


NULL = _NullType()


def is_null(value: Any) -> bool:
    """Return True for the NULL sentinel, Python None, or float NaN."""
    if value is NULL or value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


class DataType(enum.Enum):
    """Column data types supported by the substrate."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    @property
    def python_type(self) -> type:
        return {
            DataType.INT: int,
            DataType.FLOAT: float,
            DataType.STRING: str,
            DataType.BOOL: bool,
        }[self]

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.FLOAT)


def coerce_value(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` to ``dtype``, preserving NULLs.

    Raises :class:`SchemaError` if the value cannot be represented in the
    requested type.
    """
    if is_null(value):
        return NULL
    try:
        if dtype is DataType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and not value.is_integer():
                raise SchemaError(f"cannot coerce non-integral float {value!r} to INT")
            return int(value)
        if dtype is DataType.FLOAT:
            return float(value)
        if dtype is DataType.STRING:
            return str(value)
        if dtype is DataType.BOOL:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes"):
                    return True
                if lowered in ("false", "f", "0", "no"):
                    return False
                raise SchemaError(f"cannot coerce string {value!r} to BOOL")
            return bool(value)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"cannot coerce {value!r} to {dtype.value}") from exc
    raise SchemaError(f"unknown data type {dtype!r}")  # pragma: no cover


def infer_type(values: Iterable[Any]) -> DataType:
    """Infer the narrowest :class:`DataType` able to hold all ``values``.

    NULLs are ignored; an all-NULL column defaults to FLOAT so it can hold
    NaN in matrix form. Typed numpy arrays resolve from their dtype without
    touching individual values.
    """
    if isinstance(values, np.ndarray):
        kind = values.dtype.kind
        if kind == "b":
            return DataType.BOOL
        if kind in "iu":
            return DataType.INT
        if kind == "f":
            return DataType.FLOAT
        values = values.tolist()  # strings / objects: per-value parsing below
    seen_float = False
    seen_int = False
    seen_bool = False
    seen_str = False
    any_value = False
    for value in values:
        if is_null(value):
            continue
        any_value = True
        if isinstance(value, bool):
            seen_bool = True
        elif isinstance(value, int):
            seen_int = True
        elif isinstance(value, float):
            seen_float = True
        elif isinstance(value, str):
            parsed = _parse_string(value)
            if isinstance(parsed, bool):
                seen_bool = True
            elif isinstance(parsed, int):
                seen_int = True
            elif isinstance(parsed, float):
                seen_float = True
            else:
                seen_str = True
        else:
            seen_str = True
    if not any_value:
        return DataType.FLOAT
    if seen_str:
        return DataType.STRING
    if seen_float:
        return DataType.FLOAT
    if seen_int:
        return DataType.INT
    if seen_bool:
        return DataType.BOOL
    return DataType.STRING  # pragma: no cover - unreachable


def _parse_string(text: str) -> Any:
    """Parse a string into bool/int/float if possible, else return it."""
    stripped = text.strip()
    lowered = stripped.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        return text


#: Cell spellings (lowercased, stripped) that CSV ingest reads as NULL.
NULL_LITERALS = ("", "null", "none", "na", "nan")


def unescape_protected_cell(stripped: str) -> Optional[str]:
    """Undo the ``write_csv`` backslash escape of mistypeable strings.

    ``write_csv`` protects STRING values that would otherwise re-parse as a
    different type — NULL (the literals in :data:`NULL_LITERALS`), numbers
    (``"5"``, ``"1e3"``) and bool literals (``"true"``) — and values that
    already start with a backslash — by prefixing one backslash. A cell
    starting with ``\\`` whose remainder is such a protected form is
    therefore a *string* literal: return the remainder. Any other cell
    (including backslash-prefixed text that needs no protection) returns
    ``None`` and parses normally.
    """
    if not stripped.startswith("\\"):
        return None
    remainder = stripped[1:]
    if remainder.startswith("\\") or remainder.strip().lower() in NULL_LITERALS:
        return remainder
    if not isinstance(_parse_string(remainder), str):
        return remainder
    return None


def parse_cell(text: str) -> Any:
    """Parse a raw CSV cell into a typed Python value (NULL for empties)."""
    if text is None:
        return NULL
    stripped = text.strip()
    unescaped = unescape_protected_cell(stripped)
    if unescaped is not None:
        return unescaped
    if stripped.lower() in NULL_LITERALS:
        return NULL
    return _parse_string(stripped)


# ---------------------------------------------------------------------------------
# Columnar storage: whole-column coercion to (values, validity) array pairs
# ---------------------------------------------------------------------------------
#
# The columnar Table stores each column as a typed numpy array plus a boolean
# validity mask (True = non-NULL). Storage dtypes per DataType:
#
#   INT    -> int64    (0 placeholder at NULL positions)
#   FLOAT  -> float64  (NaN placeholder at NULL positions)
#   BOOL   -> bool_    (False placeholder at NULL positions)
#   STRING -> object   (the NULL sentinel itself at NULL positions)
#
# ``coerce_column`` vectorizes the per-value ``coerce_value`` contract: numeric
# inputs (typed arrays, or lists that numpy can convert in C) never touch
# Python per value; anything else falls back to element-wise ``coerce_value``,
# preserving the exact error semantics.

_STORAGE_DTYPE = {
    DataType.INT: np.int64,
    DataType.FLOAT: np.float64,
    DataType.BOOL: np.bool_,
    DataType.STRING: object,
}


def null_placeholder(dtype: DataType) -> Any:
    """The in-array placeholder stored at NULL positions for ``dtype``."""
    return {
        DataType.INT: 0,
        DataType.FLOAT: np.nan,
        DataType.BOOL: False,
        DataType.STRING: NULL,
    }[dtype]


def _finalize_float(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    values = np.asarray(values, dtype=np.float64)
    return values, ~np.isnan(values)


# int64 bounds as exact float64 values (2**63 is representable; upper is
# exclusive because int64 max itself rounds up to 2**63 in float).
INT64_MIN_FLOAT = -9223372036854775808.0
INT64_MAX_FLOAT = 9223372036854775808.0


def int_exact_cast(values: np.ndarray) -> np.ndarray:
    """Cast a float64 array (no NaNs) to int64, failing loudly like
    scalar coercion: non-integral or non-finite values raise, and values
    outside int64 range raise instead of wrapping."""
    if values.size:
        finite = np.isfinite(values)
        if not bool(finite.all()):
            bad = values[~finite][0]
            raise SchemaError(f"cannot coerce non-integral float {bad!r} to INT")
        non_integral = values != np.floor(values)
        if bool(non_integral.any()):
            bad = values[non_integral][0]
            raise SchemaError(f"cannot coerce non-integral float {bad!r} to INT")
        out_of_range = (values < INT64_MIN_FLOAT) | (values >= INT64_MAX_FLOAT)
        if bool(out_of_range.any()):
            bad = values[out_of_range][0]
            raise SchemaError(f"integer {bad!r} overflows the int64 column storage")
    return values.astype(np.int64)


def _finalize_int(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce a float array to INT storage, enforcing integrality."""
    valid = ~np.isnan(values)
    out = np.zeros(values.shape, dtype=np.int64)
    out[valid] = int_exact_cast(values[valid])
    return out, valid


def _coerce_column_fallback(values, dtype: DataType) -> Tuple[np.ndarray, np.ndarray]:
    """Element-wise path: exact ``coerce_value`` semantics for mixed inputs."""
    coerced = [coerce_value(v, dtype) for v in values]
    valid = np.fromiter((v is not NULL for v in coerced), dtype=bool, count=len(coerced))
    out = np.empty(len(coerced), dtype=_STORAGE_DTYPE[dtype])
    if dtype is DataType.STRING:
        out[:] = coerced
        return out, valid
    placeholder = null_placeholder(dtype)
    try:
        out[:] = [placeholder if v is NULL else v for v in coerced]
    except OverflowError as exc:
        raise SchemaError(f"value overflows the {dtype.value} column storage") from exc
    if dtype is DataType.FLOAT:
        # A coerced NaN (e.g. the string "nan") is NULL under is_null(); the
        # validity mask is the storage-level source of truth, so keep the
        # FLOAT invariant NULL <=> NaN.
        valid &= ~np.isnan(out)
    return out, valid


def coerce_column(values, dtype: DataType) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce a whole column to ``dtype`` storage, returning (values, valid).

    Equivalent to mapping :func:`coerce_value` over ``values`` (same
    :class:`SchemaError` conditions), but typed/convertible numeric input is
    processed entirely in numpy.
    """
    if isinstance(values, np.ndarray) and values.ndim != 1:
        raise SchemaError(f"column data must be 1-D, got shape {values.shape}")
    if not isinstance(values, np.ndarray):
        values = list(values)
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=_STORAGE_DTYPE[dtype]), np.empty(0, dtype=bool)

    if dtype is DataType.FLOAT:
        if isinstance(values, np.ndarray) and values.dtype.kind in "bif":
            return _finalize_float(values)
        try:
            # numpy converts numbers, numeric strings and None (-> NaN) in C;
            # the NULL sentinel or unparsable strings raise and fall back.
            return _finalize_float(np.asarray(values, dtype=np.float64))
        except (TypeError, ValueError):
            return _coerce_column_fallback(values, dtype)

    if dtype is DataType.INT:
        natural = values if isinstance(values, np.ndarray) else None
        if natural is None:
            try:
                natural = np.asarray(values)
            except (TypeError, ValueError, OverflowError):
                natural = None
        if natural is not None:
            if natural.dtype.kind == "u":
                if natural.size and int(natural.max()) > np.iinfo(np.int64).max:
                    raise SchemaError("value overflows the int column storage")
                return natural.astype(np.int64), np.ones(n, dtype=bool)
            if natural.dtype.kind == "i":
                return natural.astype(np.int64, copy=False), np.ones(n, dtype=bool)
            if natural.dtype.kind in "bf":
                return _finalize_int(np.asarray(natural, dtype=np.float64))
        return _coerce_column_fallback(values, dtype)

    if dtype is DataType.BOOL:
        if isinstance(values, np.ndarray) and values.dtype.kind == "b":
            return values.astype(np.bool_, copy=False), np.ones(n, dtype=bool)
        return _coerce_column_fallback(values, dtype)

    if dtype is DataType.STRING:
        if isinstance(values, np.ndarray) and values.dtype.kind == "U":
            return values.astype(object), np.ones(n, dtype=bool)
        return _coerce_column_fallback(values, dtype)

    raise SchemaError(f"unknown data type {dtype!r}")  # pragma: no cover


def storage_to_list(values: np.ndarray, valid: np.ndarray) -> list:
    """Convert (values, valid) storage back to a Python list with NULLs."""
    out = values.tolist()
    if not bool(valid.all()):
        for i in np.nonzero(~valid)[0]:
            out[i] = NULL
    return out

"""Value types for the relational substrate.

The substrate supports the four types a tabular ML pipeline needs:
integers, floats, strings and booleans, plus an explicit ``NULL`` sentinel
that survives joins and is distinguishable from ``0``/``""``/``False``.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Iterable, Optional

from repro.exceptions import SchemaError


class _NullType:
    """Singleton sentinel for SQL-style NULL values."""

    _instance: Optional["_NullType"] = None

    def __new__(cls) -> "_NullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __eq__(self, other: Any) -> bool:
        return other is self or isinstance(other, _NullType)

    def __hash__(self) -> int:
        return hash("__amalur_null__")


NULL = _NullType()


def is_null(value: Any) -> bool:
    """Return True for the NULL sentinel, Python None, or float NaN."""
    if value is NULL or value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


class DataType(enum.Enum):
    """Column data types supported by the substrate."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    @property
    def python_type(self) -> type:
        return {
            DataType.INT: int,
            DataType.FLOAT: float,
            DataType.STRING: str,
            DataType.BOOL: bool,
        }[self]

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.FLOAT)


def coerce_value(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` to ``dtype``, preserving NULLs.

    Raises :class:`SchemaError` if the value cannot be represented in the
    requested type.
    """
    if is_null(value):
        return NULL
    try:
        if dtype is DataType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and not value.is_integer():
                raise SchemaError(f"cannot coerce non-integral float {value!r} to INT")
            return int(value)
        if dtype is DataType.FLOAT:
            return float(value)
        if dtype is DataType.STRING:
            return str(value)
        if dtype is DataType.BOOL:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes"):
                    return True
                if lowered in ("false", "f", "0", "no"):
                    return False
                raise SchemaError(f"cannot coerce string {value!r} to BOOL")
            return bool(value)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"cannot coerce {value!r} to {dtype.value}") from exc
    raise SchemaError(f"unknown data type {dtype!r}")  # pragma: no cover


def infer_type(values: Iterable[Any]) -> DataType:
    """Infer the narrowest :class:`DataType` able to hold all ``values``.

    NULLs are ignored; an all-NULL column defaults to FLOAT so it can hold
    NaN in matrix form.
    """
    seen_float = False
    seen_int = False
    seen_bool = False
    seen_str = False
    any_value = False
    for value in values:
        if is_null(value):
            continue
        any_value = True
        if isinstance(value, bool):
            seen_bool = True
        elif isinstance(value, int):
            seen_int = True
        elif isinstance(value, float):
            seen_float = True
        elif isinstance(value, str):
            parsed = _parse_string(value)
            if isinstance(parsed, bool):
                seen_bool = True
            elif isinstance(parsed, int):
                seen_int = True
            elif isinstance(parsed, float):
                seen_float = True
            else:
                seen_str = True
        else:
            seen_str = True
    if not any_value:
        return DataType.FLOAT
    if seen_str:
        return DataType.STRING
    if seen_float:
        return DataType.FLOAT
    if seen_int:
        return DataType.INT
    if seen_bool:
        return DataType.BOOL
    return DataType.STRING  # pragma: no cover - unreachable


def _parse_string(text: str) -> Any:
    """Parse a string into bool/int/float if possible, else return it."""
    stripped = text.strip()
    lowered = stripped.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        return text


def parse_cell(text: str) -> Any:
    """Parse a raw CSV cell into a typed Python value (NULL for empties)."""
    if text is None:
        return NULL
    stripped = text.strip()
    if stripped == "" or stripped.lower() in ("null", "none", "na", "nan"):
        return NULL
    return _parse_string(stripped)

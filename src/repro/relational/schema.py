"""Schemas and columns for the relational substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import SchemaError
from repro.relational.types import DataType


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Attributes
    ----------
    name:
        Column name, unique within its schema.
    dtype:
        The column's :class:`DataType`.
    is_key:
        Whether the column is (part of) the table's entity key, used by
        key-based entity resolution.
    is_label:
        Whether the column is the supervised-learning label.
    description:
        Optional free-text description kept in the metadata catalog.
    """

    name: str
    dtype: DataType = DataType.FLOAT
    is_key: bool = False
    is_label: bool = False
    description: str = ""

    def renamed(self, new_name: str) -> "Column":
        return Column(new_name, self.dtype, self.is_key, self.is_label, self.description)

    def with_role(self, *, is_key: Optional[bool] = None, is_label: Optional[bool] = None) -> "Column":
        return Column(
            self.name,
            self.dtype,
            self.is_key if is_key is None else is_key,
            self.is_label if is_label is None else is_label,
            self.description,
        )


class Schema:
    """An ordered collection of uniquely named :class:`Column` objects."""

    def __init__(self, columns: Sequence[Column]):
        names = [column.name for column in columns]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names in schema: {sorted(duplicates)}")
        self._columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {column.name: i for i, column in enumerate(self._columns)}

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, key) -> Column:
        if isinstance(key, str):
            try:
                return self._columns[self._index[key]]
            except KeyError as exc:
                raise SchemaError(f"no column named {key!r}") from exc
        return self._columns[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.dtype.value}" for c in self._columns)
        return f"Schema({cols})"

    # -- accessors -----------------------------------------------------------------
    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> List[str]:
        return [column.name for column in self._columns]

    @property
    def key_columns(self) -> List[Column]:
        return [column for column in self._columns if column.is_key]

    @property
    def label_columns(self) -> List[Column]:
        return [column for column in self._columns if column.is_label]

    @property
    def feature_columns(self) -> List[Column]:
        """Numeric, non-key, non-label columns usable as ML features."""
        return [
            column
            for column in self._columns
            if column.dtype.is_numeric and not column.is_key and not column.is_label
        ]

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError as exc:
            raise SchemaError(f"no column named {name!r}") from exc

    def dtype_of(self, name: str) -> DataType:
        return self[name].dtype

    # -- construction helpers --------------------------------------------------------
    @classmethod
    def of(cls, **name_to_dtype: DataType) -> "Schema":
        """Build a schema from keyword arguments, e.g. ``Schema.of(a=DataType.INT)``."""
        return cls([Column(name, dtype) for name, dtype in name_to_dtype.items()])

    def project(self, names: Sequence[str]) -> "Schema":
        return Schema([self[name] for name in names])

    def drop(self, names: Iterable[str]) -> "Schema":
        dropped = set(names)
        missing = dropped - set(self.names)
        if missing:
            raise SchemaError(f"cannot drop unknown columns: {sorted(missing)}")
        return Schema([column for column in self._columns if column.name not in dropped])

    def rename(self, renames: Dict[str, str]) -> "Schema":
        unknown = set(renames) - set(self.names)
        if unknown:
            raise SchemaError(f"cannot rename unknown columns: {sorted(unknown)}")
        return Schema(
            [column.renamed(renames.get(column.name, column.name)) for column in self._columns]
        )

    def with_column(self, column: Column) -> "Schema":
        return Schema(list(self._columns) + [column])

    def merge_disjoint(self, other: "Schema") -> "Schema":
        """Concatenate two schemas with disjoint column names."""
        overlap = set(self.names) & set(other.names)
        if overlap:
            raise SchemaError(f"schemas overlap on columns: {sorted(overlap)}")
        return Schema(list(self._columns) + list(other.columns))


@dataclass
class SourceDescription:
    """Basic metadata describing a source table (paper §II-A).

    This is the "basic metadata" kept by the hybrid metadata catalog:
    schema, row count, null ratio per column, and provenance (silo name).
    """

    name: str
    schema: Schema
    n_rows: int
    null_ratio: Dict[str, float] = field(default_factory=dict)
    silo: str = ""
    provenance: str = ""

    @property
    def n_columns(self) -> int:
        return len(self.schema)

    def overall_null_ratio(self) -> float:
        if not self.null_ratio:
            return 0.0
        return sum(self.null_ratio.values()) / len(self.null_ratio)

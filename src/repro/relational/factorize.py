"""Vectorized key factorization shared by hash joins and entity resolution.

Both the Table I join operators (:mod:`repro.relational.joins`) and the
key-based entity resolver (:mod:`repro.metadata.entity_resolution`) need the
same primitive: map the key tuples of two tables into one shared integer code
space so that equal keys get equal codes, NULL keys get ``-1`` (SQL
semantics: NULL never matches anything, including another NULL), and
matching becomes ``np.searchsorted`` over sorted codes instead of a Python
dict probe per row.

The factorization follows the value-equality rules of the row-at-a-time
implementation it replaces: numeric and boolean keys compare numerically
(``1 == 1.0 == True``), string keys compare as exact strings, and a numeric
key never equals a string key.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.relational.table import Table
from repro.relational.types import (
    _STORAGE_DTYPE,
    INT64_MAX_FLOAT,
    INT64_MIN_FLOAT,
    DataType,
    null_placeholder,
)

_NUMERIC_KINDS = (DataType.INT, DataType.FLOAT, DataType.BOOL)


def expand_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + l) for s, l in zip(starts, lengths)]``."""
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    # Position within the flattened output minus the start of its own range
    # gives the intra-range offset; add the range's source start.
    return np.arange(total, dtype=np.int64) - np.repeat(ends - lengths, lengths) + np.repeat(
        starts, lengths
    )


def cumcount(codes: np.ndarray) -> np.ndarray:
    """Occurrence index of each element among equal values, in array order.

    ``cumcount([5, 3, 5, 5, 3]) == [0, 0, 1, 2, 1]``.
    """
    n = codes.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=new_group[1:])
    group_starts = np.nonzero(new_group)[0]
    group_lengths = np.diff(np.append(group_starts, n))
    ranks_sorted = np.arange(n, dtype=np.int64) - np.repeat(group_starts, group_lengths)
    out = np.empty(n, dtype=np.int64)
    out[order] = ranks_sorted
    return out


def _numeric_view(values: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Key column as float64 with NULL positions neutralized to 0."""
    out = np.asarray(values, dtype=np.float64)
    if not bool(valid.all()):
        out = out.copy()
        out[~valid] = 0.0
    return out


def _integer_view(values: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Key column as exact int64 (no float round-trip) with NULLs neutralized."""
    out = np.asarray(values, dtype=np.int64)
    if not bool(valid.all()):
        out = out.copy()
        out[~valid] = 0
    return out


def _mixed_int_float_codes(
    int_values: np.ndarray,
    int_valid: np.ndarray,
    float_values: np.ndarray,
    float_valid: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared codes for an INT-vs-FLOAT key pair without precision loss.

    Python ``==`` (the seed semantics) compares int and float exactly, so
    ``2**53 + 1`` must NOT equal ``2.0**53``. Integral floats inside the
    int64 range are converted to exact int64 and share the int side's code
    space; every other float (fractional, non-finite, out of range) can
    never equal an int64 key and gets a private code.
    """
    ints = np.asarray(int_values, dtype=np.int64)
    floats = np.asarray(float_values, dtype=np.float64)
    convertible = (
        float_valid
        & (floats == np.floor(floats))
        & (floats >= INT64_MIN_FLOAT)
        & (floats < INT64_MAX_FLOAT)
    )
    mapped = np.where(convertible, floats, 0.0).astype(np.int64)
    combined = np.concatenate([np.where(int_valid, ints, 0), mapped])
    _, codes = np.unique(combined, return_inverse=True)
    codes = codes.astype(np.int64, copy=False)
    int_codes = codes[: ints.size]
    float_codes = codes[ints.size:].copy()
    non_convertible = np.nonzero(~convertible)[0]
    if non_convertible.size:
        base = int(codes.max(initial=-1)) + 1
        float_codes[non_convertible] = base + np.arange(non_convertible.size)
    return int_codes, float_codes


def _string_view(values: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Key column as a fixed-width string array with NULLs neutralized."""
    if values.dtype.kind == "O":
        if not bool(valid.all()):
            values = np.where(valid, values, "")
        return values.astype(str)
    return np.asarray(values, dtype=str)


def pair_column_codes(
    left_values: np.ndarray,
    left_valid: np.ndarray,
    left_dtype: DataType,
    right_values: np.ndarray,
    right_valid: np.ndarray,
    right_dtype: DataType,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared-space integer codes for one key column pair (-1 at NULLs)."""
    n_left = left_values.shape[0]
    left_numeric = left_dtype in _NUMERIC_KINDS
    right_numeric = right_dtype in _NUMERIC_KINDS
    if left_numeric == right_numeric:
        if left_numeric and left_dtype is not DataType.FLOAT and right_dtype is not DataType.FLOAT:
            # INT/BOOL on both sides: stay in exact int64 — a float64
            # round-trip would collapse integer keys above 2**53.
            view = _integer_view
        elif left_numeric and DataType.INT in (left_dtype, right_dtype):
            # INT vs FLOAT: exact mixed comparison (no float64 round-trip
            # of the int side).
            if left_dtype is DataType.INT:
                int_codes, float_codes = _mixed_int_float_codes(
                    left_values, left_valid, right_values, right_valid
                )
                codes = np.concatenate([int_codes, float_codes])
            else:
                int_codes, float_codes = _mixed_int_float_codes(
                    right_values, right_valid, left_values, left_valid
                )
                codes = np.concatenate([float_codes, int_codes])
            codes[~np.concatenate([left_valid, right_valid])] = -1
            return codes[:n_left], codes[n_left:]
        elif left_numeric:
            view = _numeric_view  # FLOAT/FLOAT or BOOL/FLOAT: float64 is exact
        else:
            view = _string_view
        combined = np.concatenate(
            [view(left_values, left_valid), view(right_values, right_valid)]
        )
        _, codes = np.unique(combined, return_inverse=True)
        codes = codes.astype(np.int64, copy=False)
    else:
        # A numeric key never equals a string key: factorize each side in a
        # disjoint code range so no cross-side code collides.
        view_left = _numeric_view if left_numeric else _string_view
        view_right = _numeric_view if right_numeric else _string_view
        _, left_codes = np.unique(view_left(left_values, left_valid), return_inverse=True)
        _, right_codes = np.unique(view_right(right_values, right_valid), return_inverse=True)
        offset = int(left_codes.max(initial=-1)) + 1
        codes = np.concatenate(
            [left_codes.astype(np.int64), right_codes.astype(np.int64) + offset]
        )
    codes[~np.concatenate([left_valid, right_valid])] = -1
    return codes[:n_left], codes[n_left:]


def key_codes(
    left: Table, right: Table, pairs: Sequence[Tuple[str, str]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Codes for (possibly composite) keys; -1 where any key part is NULL."""
    if not pairs:
        raise ValueError("key factorization needs at least one column pair")
    n_left = left.n_rows
    combined = None
    null_mask = None
    for left_column, right_column in pairs:
        l_codes, r_codes = pair_column_codes(
            left.column_values(left_column),
            left.column_valid(left_column),
            left.schema[left_column].dtype,
            right.column_values(right_column),
            right.column_valid(right_column),
            right.schema[right_column].dtype,
        )
        codes = np.concatenate([l_codes, r_codes])
        part_null = codes < 0
        if combined is None:
            combined = np.where(part_null, 0, codes)
            null_mask = part_null
        else:
            # Mix the next column in, then re-compact so values stay bounded
            # by (n_left + n_right)^2 — no overflow for any number of key
            # columns.
            radix = int(codes.max(initial=-1)) + 2
            mixed = combined * radix + np.where(part_null, 0, codes)
            _, combined = np.unique(mixed, return_inverse=True)
            combined = combined.astype(np.int64, copy=False)
            null_mask = null_mask | part_null
    combined = np.where(null_mask, -1, combined)
    return combined[:n_left], combined[n_left:]


def hash_join_index(
    left_codes: np.ndarray,
    right_codes: np.ndarray,
    *,
    keep_left_unmatched: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute join row provenance from shared key codes.

    Returns ``(left_rows, right_rows, matched_right)``: per output row the
    originating left / right row index (-1 when absent), in the same order
    the row-at-a-time implementation produced — left rows in order, each
    expanded by its right matches in right-row order — plus the boolean mask
    of right rows that matched at least once.
    """
    n_left = left_codes.size
    r_sort = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[r_sort]
    start = np.searchsorted(sorted_codes, left_codes, side="left")
    end = np.searchsorted(sorted_codes, left_codes, side="right")
    counts = end - start
    if n_left:
        counts = np.where(left_codes < 0, 0, counts)  # NULL keys never match
    out_counts = np.maximum(counts, 1) if keep_left_unmatched else counts
    total = int(out_counts.sum())
    left_rows = np.repeat(np.arange(n_left, dtype=np.int64), out_counts)
    right_rows = np.full(total, -1, dtype=np.int64)
    matched = counts > 0
    offsets = np.cumsum(out_counts) - out_counts
    positions = expand_ranges(offsets[matched], counts[matched])
    sources = expand_ranges(start[matched], counts[matched])
    right_rows[positions] = r_sort[sources]
    matched_right = np.zeros(right_codes.size, dtype=bool)
    hits = right_rows[right_rows >= 0]
    matched_right[hits] = True
    return left_rows, right_rows, matched_right


def gather_column(
    table: Table, name: str, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather one column at ``rows`` (-1 entries yield invalid positions)."""
    values = table.column_values(name)
    valid = table.column_valid(name)
    present = rows >= 0
    if table.n_rows == 0:
        dtype = table.schema[name].dtype
        out = np.full(rows.size, null_placeholder(dtype), dtype=_STORAGE_DTYPE[dtype])
        return out, np.zeros(rows.size, dtype=bool)
    take = np.where(present, rows, 0)
    return values[take], valid[take] & present


__all__: List[str] = [
    "cumcount",
    "expand_ranges",
    "gather_column",
    "hash_join_index",
    "key_codes",
    "pair_column_codes",
]

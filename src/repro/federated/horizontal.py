"""Horizontal federated learning (FedAvg) for the union scenario (Table I, Ex. 4).

When silos share the feature space but not the sample space — the paper's
Example 4 / HFL case — the standard approach is federated averaging: every
round each party takes a few local gradient steps on its own rows and the
orchestrator averages the resulting weights, weighted by local sample
counts. Supports linear and logistic regression heads and optional
differentially-private updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro import telemetry as _telemetry
from repro.exceptions import FederatedError
from repro.federated.encryption import gaussian_mechanism
from repro.federated.party import Party
from repro.silos.network import SimulatedNetwork


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


@dataclass
class HFLTrainingReport:
    """Outcome of a FedAvg training run."""

    loss_history: List[float] = field(default_factory=list)
    n_rounds: int = 0
    bytes_transferred: int = 0
    n_messages: int = 0
    participants: List[str] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


@dataclass
class FederatedAveraging:
    """FedAvg over parties sharing the same feature columns."""

    model: str = "linear"  # "linear" or "logistic"
    n_rounds: int = 50
    local_epochs: int = 1
    learning_rate: float = 0.05
    dp_epsilon: Optional[float] = None
    dp_sensitivity: float = 1.0
    network: Optional[SimulatedNetwork] = None
    coef_: Optional[np.ndarray] = field(default=None, init=False)
    report_: Optional[HFLTrainingReport] = field(default=None, init=False)

    def fit(self, parties: Sequence[Party]) -> "FederatedAveraging":
        if not parties:
            raise FederatedError("FedAvg needs at least one party")
        if self.model not in ("linear", "logistic"):
            raise FederatedError(f"unknown model {self.model!r}")
        n_features = parties[0].n_features
        feature_names = parties[0].feature_names
        for party in parties:
            if party.feature_names != feature_names:
                raise FederatedError(
                    f"party {party.name!r} has a different feature schema; HFL requires the "
                    "union scenario's shared columns"
                )
            if not party.has_labels:
                raise FederatedError(f"party {party.name!r} holds no labels")

        network = self.network or SimulatedNetwork()
        weights = np.zeros(n_features)
        total_rows = sum(p.n_rows for p in parties)
        report = HFLTrainingReport(participants=[p.name for p in parties])

        with _telemetry.span(
            "train.federated.fedavg", parties=len(parties), rounds=self.n_rounds,
            model=self.model, total_rows=total_rows,
        ) as fit_span:
            for round_index in range(self.n_rounds):
                with _telemetry.span(
                    "train.federated.fedavg.round", round=round_index
                ):
                    local_weights = []
                    local_sizes = []
                    for party in parties:
                        network.send("server", party.name, "global_weights", weights)
                        updated = self._local_update(party, weights.copy())
                        if self.dp_epsilon:
                            updated = gaussian_mechanism(
                                updated,
                                sensitivity=self.dp_sensitivity,
                                epsilon=self.dp_epsilon,
                                seed=round_index * 1000 + party.n_rows,
                            )
                        network.send(party.name, "server", "local_weights", updated)
                        local_weights.append(updated)
                        local_sizes.append(party.n_rows)
                    weights = np.average(np.stack(local_weights), axis=0, weights=local_sizes)
                    report.loss_history.append(self._global_loss(parties, weights, total_rows))
                if _telemetry.ENABLED:
                    _telemetry.counter_add("federated.rounds")
                    _telemetry.counter_add("federated.fedavg.rounds")
                    _telemetry.observe("federated.fedavg.loss", report.loss_history[-1])
            fit_span.set(
                final_loss=report.final_loss,
                messages=network.n_messages,
                bytes_transferred=network.total_bytes,
            )

        report.n_rounds = self.n_rounds
        report.bytes_transferred = network.total_bytes
        report.n_messages = network.n_messages
        self.coef_ = weights
        self.report_ = report
        return self

    def _local_update(self, party: Party, weights: np.ndarray) -> np.ndarray:
        features, labels = party.data, party.labels
        for _ in range(self.local_epochs):
            if self.model == "linear":
                residual = features @ weights - labels
            else:
                residual = _sigmoid(features @ weights) - labels
            gradient = features.T @ residual / party.n_rows
            weights = weights - self.learning_rate * gradient
        return weights

    def _global_loss(self, parties: Sequence[Party], weights: np.ndarray, total_rows: int) -> float:
        loss = 0.0
        for party in parties:
            if self.model == "linear":
                residual = party.data @ weights - party.labels
                loss += float(np.sum(residual**2))
            else:
                probabilities = np.clip(_sigmoid(party.data @ weights), 1e-12, 1 - 1e-12)
                loss += float(
                    -np.sum(
                        party.labels * np.log(probabilities)
                        + (1 - party.labels) * np.log(1 - probabilities)
                    )
                )
        return loss / total_rows

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise FederatedError("model is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        scores = features @ self.coef_
        if self.model == "logistic":
            return (_sigmoid(scores) >= 0.5).astype(int)
        return scores

"""Privacy primitives for the federated-learning substrate.

The paper's §V-B lists homomorphic encryption, secret sharing and
differential privacy as the standard privacy techniques for DI+FL
pipelines. Real Paillier encryption needs big-number arithmetic that adds
nothing to the reproduction, so :class:`SimulatedPaillier` keeps the exact
protocol structure — key pairs, ciphertext objects that only support
addition and plaintext scaling, decryption only with the private key — and
counts every operation so the encryption overhead of §V-B can be measured
and reported, while the "ciphertext" internally stores a masked plaintext.
This substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

import numpy as np

from repro.exceptions import FederatedError

Number = Union[int, float]


@dataclass(frozen=True)
class EncryptedNumber:
    """A ciphertext under :class:`SimulatedPaillier`.

    Supports only what an additively homomorphic scheme supports: adding
    two ciphertexts from the same key pair, adding a plaintext, and
    multiplying by a plaintext scalar.
    """

    key_id: int
    masked_value: float

    def __add__(self, other: Union["EncryptedNumber", Number]) -> "EncryptedNumber":
        if isinstance(other, EncryptedNumber):
            if other.key_id != self.key_id:
                raise FederatedError("cannot add ciphertexts from different key pairs")
            return EncryptedNumber(self.key_id, self.masked_value + other.masked_value)
        return EncryptedNumber(self.key_id, self.masked_value + float(other))

    __radd__ = __add__

    def __mul__(self, scalar: Number) -> "EncryptedNumber":
        if isinstance(scalar, EncryptedNumber):
            raise FederatedError("an additively homomorphic scheme cannot multiply ciphertexts")
        return EncryptedNumber(self.key_id, self.masked_value * float(scalar))

    __rmul__ = __mul__


@dataclass
class SimulatedPaillier:
    """Additively homomorphic encryption stand-in with operation counters."""

    key_id: int = field(default_factory=lambda: int(np.random.default_rng().integers(1, 2**31)))
    encryptions: int = field(default=0, init=False)
    decryptions: int = field(default=0, init=False)
    homomorphic_ops: int = field(default=0, init=False)

    def encrypt(self, value: Number) -> EncryptedNumber:
        self.encryptions += 1
        return EncryptedNumber(self.key_id, float(value))

    def encrypt_vector(self, values: Sequence[Number]) -> List[EncryptedNumber]:
        return [self.encrypt(v) for v in np.asarray(values, dtype=float).ravel()]

    def decrypt(self, ciphertext: EncryptedNumber) -> float:
        if ciphertext.key_id != self.key_id:
            raise FederatedError("ciphertext was produced under a different key pair")
        self.decryptions += 1
        return ciphertext.masked_value

    def decrypt_vector(self, ciphertexts: Sequence[EncryptedNumber]) -> np.ndarray:
        return np.asarray([self.decrypt(c) for c in ciphertexts])

    def add(self, a: EncryptedNumber, b: Union[EncryptedNumber, Number]) -> EncryptedNumber:
        self.homomorphic_ops += 1
        return a + b

    def scale(self, a: EncryptedNumber, scalar: Number) -> EncryptedNumber:
        self.homomorphic_ops += 1
        return a * scalar

    @property
    def total_operations(self) -> int:
        return self.encryptions + self.decryptions + self.homomorphic_ops


@dataclass
class SecretSharer:
    """Additive secret sharing over the reals (Shamir-style two-of-two)."""

    seed: int = 0

    def share(self, values: np.ndarray, n_shares: int = 2) -> List[np.ndarray]:
        """Split ``values`` into ``n_shares`` additive shares."""
        if n_shares < 2:
            raise FederatedError("secret sharing needs at least two shares")
        values = np.asarray(values, dtype=float)
        rng = np.random.default_rng(self.seed)
        shares = [rng.standard_normal(values.shape) for _ in range(n_shares - 1)]
        last = values - sum(shares)
        return shares + [last]

    @staticmethod
    def reconstruct(shares: Sequence[np.ndarray]) -> np.ndarray:
        if not shares:
            raise FederatedError("cannot reconstruct from zero shares")
        return np.sum(np.stack([np.asarray(s, dtype=float) for s in shares]), axis=0)


def gaussian_mechanism(
    values: np.ndarray,
    sensitivity: float,
    epsilon: float,
    delta: float = 1e-5,
    seed: int = 0,
) -> np.ndarray:
    """Apply the Gaussian mechanism for (ε, δ)-differential privacy."""
    if epsilon <= 0 or delta <= 0:
        raise FederatedError("epsilon and delta must be positive")
    values = np.asarray(values, dtype=float)
    sigma = sensitivity * np.sqrt(2.0 * np.log(1.25 / delta)) / epsilon
    rng = np.random.default_rng(seed)
    return values + rng.normal(0.0, sigma, size=values.shape)

"""Private entity alignment for vertical federated learning (paper §V-B).

Before VFL training, the parties must agree on the overlapping sample
space without revealing their non-overlapping entities. Real systems use
private set intersection (PSI) protocols based on blind signatures or
Diffie-Hellman; here the protocol structure is preserved — each party only
publishes salted hashes of its identifiers, the orchestrator intersects
the hash sets, and each party learns only which of *its own* rows are in
the intersection — while the hash is a keyed SHA-256 instead of a blind
signature. The output is the per-party row order over the shared sample
space, i.e. the compressed indicator matrices restricted to the overlap.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

from repro import telemetry as _telemetry
from repro.exceptions import FederatedError
from repro.federated.party import Party


def _salted_hash(value, salt: str) -> str:
    return hashlib.sha256(f"{salt}::{value}".encode("utf-8")).hexdigest()


def private_set_intersection(
    id_sets: Sequence[Sequence], salt: str = "amalur-psi"
) -> List:
    """Intersect identifier sets via salted hashes; returns the shared ids.

    The shared identifiers are returned in the order of the first party's
    list (the label-holding "active" party in VFL), which fixes the row
    order of the aligned sample space.
    """
    if not id_sets:
        return []
    hashed_sets = [
        {_salted_hash(value, salt) for value in ids} for ids in id_sets
    ]
    shared_hashes = set.intersection(*hashed_sets)
    first = id_sets[0]
    seen = set()
    shared = []
    for value in first:
        digest = _salted_hash(value, salt)
        if digest in shared_hashes and digest not in seen:
            shared.append(value)
            seen.add(digest)
    return shared


def build_alignment(parties: Sequence[Party], salt: str = "amalur-psi") -> Dict[str, List[int]]:
    """Compute, per party, the local row indices of the shared sample space.

    Every party must carry ``entity_ids``. The result maps party name to a
    list of local row indices, all of the same length and aligned
    position-by-position — exactly the information the compressed
    indicator matrices ``CI_k`` encode for the overlapping rows.
    """
    for party in parties:
        if party.entity_ids is None:
            raise FederatedError(f"party {party.name!r} has no entity ids to align on")
    with _telemetry.span(
        "train.federated.align", parties=len(parties)
    ) as align_span:
        shared_ids = private_set_intersection(
            [p.entity_ids for p in parties], salt=salt
        )
        alignment: Dict[str, List[int]] = {}
        for party in parties:
            index = {}
            for row, entity_id in enumerate(party.entity_ids):
                index.setdefault(entity_id, row)
            try:
                alignment[party.name] = [index[entity_id] for entity_id in shared_ids]
            except KeyError as exc:  # pragma: no cover - defensive
                raise FederatedError(
                    f"party {party.name!r} lost entity {exc.args[0]!r} during alignment"
                ) from exc
        align_span.set(aligned_rows=len(shared_ids))
    if _telemetry.ENABLED:
        _telemetry.counter_add("federated.aligned_rows", float(len(shared_ids)))
    return alignment

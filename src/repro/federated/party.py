"""A federated-learning party: one silo's local view of the training data."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import FederatedError
from repro.matrices.indicator_matrix import IndicatorMatrix
from repro.matrices.mapping_matrix import MappingMatrix


@dataclass
class Party:
    """One participant in a federated computation.

    Attributes
    ----------
    name:
        Party / silo identifier.
    data:
        The local data matrix ``D_k`` (rows = local entities, columns =
        local features). Never leaves the party.
    feature_names:
        Column names of ``data``.
    labels:
        Local label vector, or ``None`` for label-less (passive) parties.
    entity_ids:
        Identifier per local row, used only by private alignment.
    mapping / indicator:
        The DI matrices describing how the local data populates the
        (virtual) target table — this is how §V-A writes the VFL feature
        space as ``X_k = I_k D_k M_kᵀ``.
    """

    name: str
    data: np.ndarray
    feature_names: List[str]
    labels: Optional[np.ndarray] = None
    entity_ids: Optional[List] = None
    mapping: Optional[MappingMatrix] = None
    indicator: Optional[IndicatorMatrix] = None

    def __post_init__(self) -> None:
        self.data = np.atleast_2d(np.asarray(self.data, dtype=float))
        if self.data.shape[1] != len(self.feature_names):
            raise FederatedError(
                f"party {self.name!r}: {self.data.shape[1]} data columns but "
                f"{len(self.feature_names)} feature names"
            )
        if self.labels is not None:
            self.labels = np.asarray(self.labels, dtype=float).ravel()
            if self.labels.shape[0] != self.data.shape[0]:
                raise FederatedError(
                    f"party {self.name!r}: labels length {self.labels.shape[0]} does not match "
                    f"{self.data.shape[0]} rows"
                )
        if self.entity_ids is not None and len(self.entity_ids) != self.data.shape[0]:
            raise FederatedError(
                f"party {self.name!r}: entity_ids length does not match data rows"
            )

    @property
    def n_rows(self) -> int:
        return self.data.shape[0]

    @property
    def n_features(self) -> int:
        return self.data.shape[1]

    @property
    def has_labels(self) -> bool:
        return self.labels is not None

    def aligned_features(self, row_order: Sequence[int]) -> np.ndarray:
        """Local features re-ordered to the shared (aligned) sample space.

        ``row_order`` holds local row indices in the order agreed during
        alignment; it is the compressed indicator restricted to the
        overlapping rows, so this is ``I_k D_k`` for the aligned block.
        """
        row_order = np.asarray(row_order, dtype=int)
        if row_order.min(initial=0) < 0 or row_order.max(initial=-1) >= self.n_rows:
            raise FederatedError(f"party {self.name!r}: alignment refers to unknown rows")
        return self.data[row_order]

    def aligned_labels(self, row_order: Sequence[int]) -> np.ndarray:
        if self.labels is None:
            raise FederatedError(f"party {self.name!r} holds no labels")
        return self.labels[np.asarray(row_order, dtype=int)]

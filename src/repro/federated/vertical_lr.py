"""Vertical federated linear regression with DI-matrix alignment (paper §V-A).

The training objective is the one quoted in the paper from Yang et al.:

    ``min_{Θ_A, Θ_B} Σ_i ‖ Θ_A X_A^(i) + Θ_B X_B^(i) − Y^(i) ‖²``

where the per-party feature spaces are expressed through the DI matrices,
``X_k = I_k D_k M_kᵀ`` — i.e. the aligned rows of each silo's local data.
The implementation follows the standard honest-but-curious protocol:

1. the parties run private entity alignment (PSI) to agree on the shared
   sample space (this is where the indicator matrices come from);
2. each round, every party computes its local partial prediction
   ``u_k = X_k Θ_k``; passive parties send it encrypted to the active
   (label-holding) party;
3. the active party forms the (encrypted) residual and sends it to each
   passive party, which computes its (encrypted, masked) gradient;
4. the coordinator decrypts masked gradients, parties unmask and update.

With encryption disabled the message flow is identical but in plaintext.
Either way, the computed updates equal centralized full-batch gradient
descent on the materialized inner-join target, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import telemetry as _telemetry
from repro.exceptions import FederatedError
from repro.federated.alignment import build_alignment
from repro.federated.encryption import SimulatedPaillier
from repro.federated.party import Party
from repro.silos.network import SimulatedNetwork

_COORDINATOR = "coordinator"


@dataclass
class VFLTrainingReport:
    """Outcome of a vertical federated training run."""

    loss_history: List[float] = field(default_factory=list)
    n_rounds: int = 0
    n_aligned_rows: int = 0
    bytes_transferred: int = 0
    n_messages: int = 0
    encryption_operations: int = 0
    weights: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


@dataclass
class VerticalFederatedLinearRegression:
    """Two-or-more-party vertical federated linear regression (ridge optional)."""

    learning_rate: float = 0.05
    n_iterations: int = 200
    l2_penalty: float = 0.0
    use_encryption: bool = True
    network: Optional[SimulatedNetwork] = None
    weights_: Dict[str, np.ndarray] = field(default_factory=dict, init=False)
    report_: Optional[VFLTrainingReport] = field(default=None, init=False)
    _party_order: List[str] = field(default_factory=list, init=False)

    def fit(
        self,
        parties: Sequence[Party],
        alignment: Optional[Dict[str, List[int]]] = None,
    ) -> "VerticalFederatedLinearRegression":
        """Train over the given parties.

        ``alignment`` maps party name → aligned local row indices; when
        omitted it is computed with private set intersection over the
        parties' entity ids.
        """
        if len(parties) < 2:
            raise FederatedError("vertical federated learning needs at least two parties")
        active = next((p for p in parties if p.has_labels), None)
        if active is None:
            raise FederatedError("no party holds labels")

        network = self.network or SimulatedNetwork()
        paillier = SimulatedPaillier(key_id=12345)
        if alignment is None:
            alignment = build_alignment(parties)
        lengths = {len(rows) for rows in alignment.values()}
        if len(lengths) != 1:
            raise FederatedError("alignment produced row lists of different lengths")
        n_rows = lengths.pop()
        if n_rows == 0:
            raise FederatedError("the parties share no entities; nothing to train on")

        features = {p.name: p.aligned_features(alignment[p.name]) for p in parties}
        labels = active.aligned_labels(alignment[active.name])
        weights = {p.name: np.zeros(p.n_features) for p in parties}
        self._party_order = [p.name for p in parties]

        report = VFLTrainingReport(n_aligned_rows=n_rows)
        with _telemetry.span(
            "train.federated.vertical_lr", parties=len(parties),
            rounds=self.n_iterations, aligned_rows=n_rows,
            encrypted=self.use_encryption,
        ) as fit_span:
            for round_index in range(self.n_iterations):
                with _telemetry.span(
                    "train.federated.vertical_lr.round", round=round_index
                ):
                    partials = {
                        name: features[name] @ weights[name] for name in self._party_order
                    }
                    # Passive parties ship their partial predictions to the
                    # active party.
                    for party in parties:
                        if party.name == active.name:
                            continue
                        payload = partials[party.name]
                        if self.use_encryption:
                            payload = paillier.encrypt_vector(payload)
                        network.send(party.name, active.name, "partial_prediction", payload)

                    residual = sum(partials.values()) - labels
                    loss = float(np.mean(residual**2))
                    report.loss_history.append(loss)

                    # The active party broadcasts the (encrypted) residual; each
                    # party computes its own gradient locally and the coordinator
                    # decrypts the masked gradients of passive parties.
                    for party in parties:
                        gradient = features[party.name].T @ residual / n_rows
                        if self.l2_penalty:
                            gradient = gradient + self.l2_penalty * weights[party.name] / n_rows
                        if party.name != active.name:
                            residual_payload = (
                                paillier.encrypt_vector(residual) if self.use_encryption else residual
                            )
                            network.send(active.name, party.name, "residual", residual_payload)
                            if self.use_encryption:
                                mask = np.random.default_rng(len(report.loss_history)).standard_normal(
                                    gradient.shape
                                )
                                masked = paillier.encrypt_vector(gradient + mask)
                                network.send(party.name, _COORDINATOR, "masked_gradient", masked)
                                decrypted = paillier.decrypt_vector(masked)
                                network.send(_COORDINATOR, party.name, "decrypted_gradient", decrypted)
                                gradient = decrypted - mask
                        weights[party.name] = weights[party.name] - self.learning_rate * gradient
                if _telemetry.ENABLED:
                    _telemetry.counter_add("federated.rounds")
                    _telemetry.counter_add("federated.vertical.rounds")
                    _telemetry.observe("federated.vertical.loss", loss)
            fit_span.set(
                final_loss=report.final_loss,
                messages=network.n_messages,
                bytes_transferred=network.total_bytes,
            )

        report.n_rounds = self.n_iterations
        report.bytes_transferred = network.total_bytes
        report.n_messages = network.n_messages
        report.encryption_operations = paillier.total_operations
        report.weights = {name: w.copy() for name, w in weights.items()}
        self.weights_ = weights
        self.report_ = report
        return self

    def predict(
        self,
        parties: Sequence[Party],
        alignment: Optional[Dict[str, List[int]]] = None,
    ) -> np.ndarray:
        """Joint prediction: the sum of each party's local partial prediction."""
        if not self.weights_:
            raise FederatedError("model is not fitted")
        if alignment is None:
            alignment = build_alignment(parties)
        prediction = None
        for party in parties:
            if party.name not in self.weights_:
                raise FederatedError(f"party {party.name!r} did not participate in training")
            local = party.aligned_features(alignment[party.name]) @ self.weights_[party.name]
            prediction = local if prediction is None else prediction + local
        return prediction

    def centralized_equivalent_weights(self) -> np.ndarray:
        """The concatenated weight vector, ordered like the training parties."""
        if not self.weights_:
            raise FederatedError("model is not fitted")
        return np.concatenate([self.weights_[name] for name in self._party_order])

"""Federated learning with data-integration metadata (paper §V).

* :mod:`repro.federated.encryption` — simulated additively-homomorphic
  encryption (Paillier stand-in), additive secret sharing and differential
  privacy noise, with operation counters so encryption overhead can be
  reported.
* :mod:`repro.federated.alignment` — PSI-style private entity alignment
  that turns entity-resolution output into the indicator matrices each
  party needs, without revealing non-overlapping identifiers.
* :mod:`repro.federated.vertical_lr` — vertical federated linear (and
  ridge) regression following Yang et al. [35], with the feature spaces
  expressed through the mapping/indicator matrices as in §V-A.
* :mod:`repro.federated.horizontal` — FedAvg for the union / HFL scenario.
"""

from repro.federated.encryption import (
    SimulatedPaillier,
    EncryptedNumber,
    SecretSharer,
    gaussian_mechanism,
)
from repro.federated.party import Party
from repro.federated.alignment import private_set_intersection, build_alignment
from repro.federated.vertical_lr import VerticalFederatedLinearRegression, VFLTrainingReport
from repro.federated.horizontal import FederatedAveraging, HFLTrainingReport

__all__ = [
    "SimulatedPaillier",
    "EncryptedNumber",
    "SecretSharer",
    "gaussian_mechanism",
    "Party",
    "private_set_intersection",
    "build_alignment",
    "VerticalFederatedLinearRegression",
    "VFLTrainingReport",
    "FederatedAveraging",
    "HFLTrainingReport",
]

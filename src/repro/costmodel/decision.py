"""Factorize-or-materialize decision making and ground-truth measurement."""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.costmodel.amalur_cost import AmalurCostModel, CostBreakdown
from repro.costmodel.morpheus_rule import MorpheusRule
from repro.costmodel.parameters import CostParameters


class Decision(enum.Enum):
    """The optimizer's execution strategies for model training over silos."""

    FACTORIZE = "factorize"
    MATERIALIZE = "materialize"
    FEDERATE = "federate"


@dataclass
class DecisionOutcome:
    """A decision plus the evidence that produced it."""

    decision: Decision
    parameters: CostParameters
    breakdown: Optional[CostBreakdown] = None
    explanation: str = ""


@dataclass
class DecisionAdvisor:
    """Chooses between factorization and materialization.

    ``method="amalur"`` uses the DI-metadata cost model (the paper's
    proposal); ``method="morpheus"`` uses the baseline heuristic.
    """

    method: str = "amalur"
    cost_model: Optional[AmalurCostModel] = None
    morpheus_rule: Optional[MorpheusRule] = None

    def __post_init__(self) -> None:
        if self.cost_model is None:
            self.cost_model = AmalurCostModel()
        if self.morpheus_rule is None:
            self.morpheus_rule = MorpheusRule()

    def decide(self, parameters: CostParameters) -> DecisionOutcome:
        if self.method == "amalur":
            breakdown = self.cost_model.breakdown(parameters)
            factorize = self.cost_model.predict_factorize(parameters)
            return DecisionOutcome(
                decision=Decision.FACTORIZE if factorize else Decision.MATERIALIZE,
                parameters=parameters,
                breakdown=breakdown,
                explanation=self.cost_model.explain(parameters),
            )
        if self.method == "morpheus":
            factorize = self.morpheus_rule.predict_factorize(parameters)
            return DecisionOutcome(
                decision=Decision.FACTORIZE if factorize else Decision.MATERIALIZE,
                parameters=parameters,
                explanation=self.morpheus_rule.explain(parameters),
            )
        raise ValueError(f"unknown decision method {self.method!r}")


def measure_ground_truth(
    amalur_matrix,
    operand_columns: int = 1,
    repeats: int = 3,
    reuse: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> Decision:
    """Empirically determine which strategy runs an LMM workload faster.

    The workload is ``reuse`` left matrix multiplications over the same
    target (a gradient-descent epoch count). The factorized strategy runs
    every LMM through the Eq. (2) rewrite; the materialized strategy pays
    for materializing the target once and then runs dense LMMs. The faster
    strategy is the ground truth for the Table III reproduction (the paper
    computes "the percentage of times that the cost estimation procedures
    correctly predicted factorization").
    """
    rng = rng or np.random.default_rng(0)
    operand = rng.standard_normal((amalur_matrix.n_columns, operand_columns))
    reuse = max(reuse, 1)

    def factorized_run():
        for _ in range(reuse):
            amalur_matrix.lmm(operand)

    def materialized_run():
        target = amalur_matrix.dataset.materialize()
        for _ in range(reuse):
            target @ operand

    factorized_time = _best_time(factorized_run, repeats)
    materialized_time = _best_time(materialized_run, repeats)
    return Decision.FACTORIZE if factorized_time < materialized_time else Decision.MATERIALIZE


def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best

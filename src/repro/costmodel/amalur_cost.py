"""Amalur's analytical cost model for factorize-vs-materialize (paper §IV-B).

The model estimates the cost of executing a (batch of) left matrix
multiplications over the target table under the two strategies:

* **materialize** — pay once for integrating the sources (reading every
  source cell, resolving redundancy, writing every target cell), then run
  dense LMMs over the ``r_T × c_T`` target;
* **factorize** — run the rewritten LMM of Eq. (2) directly over the
  sources: per-source dense multiplies, an indicator lift per source, and
  a sparse correction proportional to the number of redundant cells.

Costs are expressed in abstract "cell operations"; relative weights for
compute vs. memory writes vs. (optional) network transfer are tunable.
The DI-metadata-driven pruning rule of Example IV.1 is applied first:
when every tgd is full and the target is no larger than the sources, the
target cannot contain more redundancy than the sources and materialization
is chosen outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.costmodel.parameters import CostParameters
from repro.factorized.ops_counter import redundancy_apply_flops, sparse_matmul_flops


@dataclass
class CostBreakdown:
    """Per-strategy cost estimate, in abstract cell-operation units.

    ``backend_choices`` records, per source, which kernel the
    density-threshold rule dispatched the factorized plan's per-source
    multiply to ("dense" or "sparse") — the same decision
    :class:`repro.backends.AutoBackend` makes at execution time.
    """

    materialize_integration: float
    materialize_compute: float
    factorize_compute: float
    factorize_overhead: float
    transfer: float = 0.0
    pruned_by_tgd_rule: bool = False
    backend_choices: List[str] = field(default_factory=list)

    @property
    def materialized_total(self) -> float:
        return self.materialize_integration + self.materialize_compute + self.transfer

    @property
    def factorized_total(self) -> float:
        return self.factorize_compute + self.factorize_overhead

    @property
    def predicted_speedup(self) -> float:
        """Estimated speedup of factorization over materialization (>1 = faster)."""
        if self.factorized_total == 0:
            return float("inf")
        return self.materialized_total / self.factorized_total


@dataclass
class AmalurCostModel:
    """Analytical cost model parameterized by DI metadata.

    Parameters
    ----------
    write_weight:
        Relative cost of writing one materialized target cell (integration
        output) compared to one multiply-add.
    read_weight:
        Relative cost of reading one source cell during integration.
    lift_weight:
        Relative cost of the per-target-row indicator lift in the
        factorized plan.
    per_source_overhead:
        Fixed overhead (in cell operations) per participating source —
        kernel-launch / orchestration cost that penalizes factorization
        over very small sources.
    transfer_weight:
        Relative cost of shipping one materialized target cell out of the
        silos (0 disables the network term; the silo layer sets it).
    reuse:
        Number of LMM passes the training workload performs over the same
        target (epochs); the integration cost is amortized across them.
    """

    write_weight: float = 2.0
    read_weight: float = 1.0
    lift_weight: float = 1.0
    per_source_overhead: float = 2000.0
    transfer_weight: float = 0.0
    reuse: int = 1

    def breakdown(self, parameters: CostParameters) -> CostBreakdown:
        """Full cost breakdown for both strategies."""
        operand_columns = max(parameters.operand_columns, 1)
        reuse = max(self.reuse, 1)

        # Example IV.1 pruning rule: full tgds and a target no bigger than
        # the sources ⇒ no extra redundancy in the target ⇒ materialize.
        pruned = (
            parameters.has_full_tgds_only
            and parameters.target_cells <= parameters.total_source_cells
        )

        # Integration reads every source cell, resolves redundancy and writes
        # every target cell. Redundancy resolution — previously unpriced — is
        # charged by the nnz of the sparse mask complement (one zeroed cell
        # per redundant entry), matching how the representations apply masks;
        # a dense r_T · c_T Hadamard term would overcharge trivial/sparse
        # masks. The Table III / Figure 5 boundary benchmarks hold with this
        # term in place.
        integration = (
            parameters.total_source_cells * self.read_weight
            + redundancy_apply_flops(parameters.redundant_cells)
            + parameters.target_cells * self.write_weight
        ) / reuse
        materialize_compute = float(parameters.target_cells) * operand_columns
        transfer = parameters.target_cells * self.transfer_weight / reuse

        # Per-source multiply, dispatched the way AutoBackend stores the
        # factor: a sparse kernel pays one multiply-add per stored cell
        # (nnz · m), a dense BLAS kernel touches every cell regardless of
        # zeros (rows · cols · m).
        factorize_compute = 0.0
        backend_choices = parameters.backend_choices
        for index, (rows, cols) in enumerate(parameters.source_shapes):
            if backend_choices[index] == "sparse":
                factorize_compute += sparse_matmul_flops(
                    parameters.nnz_of(index), operand_columns
                )
            else:
                factorize_compute += rows * cols * operand_columns
            # Indicator lift charged per mapped target row — the rows the
            # compiled operator plan actually scatters — not per r_T.
            factorize_compute += (
                parameters.mapped_rows_of(index) * operand_columns * self.lift_weight
            )
        factorize_compute += parameters.redundant_cells * operand_columns
        overhead = self.per_source_overhead * parameters.n_sources

        return CostBreakdown(
            materialize_integration=integration,
            materialize_compute=materialize_compute,
            factorize_compute=factorize_compute,
            factorize_overhead=overhead,
            transfer=transfer,
            pruned_by_tgd_rule=pruned,
            backend_choices=backend_choices,
        )

    def predict_factorize(self, parameters: CostParameters) -> bool:
        """True when the model chooses factorization."""
        breakdown = self.breakdown(parameters)
        if breakdown.pruned_by_tgd_rule:
            return False
        return breakdown.factorized_total < breakdown.materialized_total

    def explain(self, parameters: CostParameters) -> str:
        breakdown = self.breakdown(parameters)
        decision = "factorize" if self.predict_factorize(parameters) else "materialize"
        return (
            f"{decision}: factorized={breakdown.factorized_total:.0f} vs "
            f"materialized={breakdown.materialized_total:.0f} cell-ops "
            f"(integration={breakdown.materialize_integration:.0f}, "
            f"pruned_by_tgd_rule={breakdown.pruned_by_tgd_rule}, "
            f"backends={breakdown.backend_choices})"
        )

"""Cost-model parameters extracted from data-integration metadata.

Paper §IV-B: "among silos there are parameters relevant for the
redundancy, source description (e.g., number of sources, number of columns
and rows in each source, null value ratio per table), source
correspondences (column matching and row matching between sources), etc."
:class:`CostParameters` is exactly that bundle, derived either from an
:class:`repro.matrices.IntegratedDataset` or specified directly for
synthetic sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.exceptions import CostModelError

#: Density at or below which a CSR kernel is expected to beat the dense BLAS
#: kernel for a factor's per-source multiply. Shared by the analytical cost
#: model, the optimizer and :class:`repro.backends.AutoBackend`, so the
#: Table III decision logic and the storage engine reason from the same
#: constant. The crossover of ``nnz·m`` CSR traversal vs. ``r·c·m`` BLAS
#: sits around 5–15% density on commodity CPUs; 0.1 is the conservative
#: middle of that band.
SPARSE_DENSITY_THRESHOLD = 0.1


@dataclass
class CostParameters:
    """Shape and overlap statistics driving the factorize/materialize decision.

    ``source_densities`` holds the observed non-zero density of each
    source's data matrix (``nnz / (rows·cols)``); when omitted it defaults
    to ``1 - null_ratio``, the best estimate DI metadata alone provides.
    ``sparse_density_threshold`` is the dense/sparse dispatch point used by
    :meth:`backend_choice`.
    """

    source_shapes: List[Tuple[int, int]]
    n_target_rows: int
    n_target_columns: int
    overlap_rows: int = 0
    overlap_columns: int = 0
    redundant_cells: int = 0
    null_ratios: List[float] = field(default_factory=list)
    has_full_tgds_only: bool = False
    operand_columns: int = 1
    source_densities: List[float] = field(default_factory=list)
    sparse_density_threshold: float = SPARSE_DENSITY_THRESHOLD
    #: Per-source count of target rows the source actually covers (the
    #: indicator's mapped rows). Defaults to ``n_target_rows`` per source —
    #: the full-coverage assumption — when not provided; populated from the
    #: dataset so gather/scatter costs are priced by what the compiled
    #: operator plans execute rather than by ``r_T``.
    source_mapped_rows: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.source_shapes:
            raise CostModelError("cost parameters need at least one source shape")
        for rows, cols in self.source_shapes:
            if rows < 0 or cols < 0:
                raise CostModelError(f"invalid source shape ({rows}, {cols})")
        if self.n_target_rows < 0 or self.n_target_columns <= 0:
            raise CostModelError("invalid target shape")
        if not self.null_ratios:
            self.null_ratios = [0.0] * len(self.source_shapes)
        if not self.source_densities:
            self.source_densities = [
                1.0 - (self.null_ratios[i] if i < len(self.null_ratios) else 0.0)
                for i in range(len(self.source_shapes))
            ]
        for density in self.source_densities:
            if not 0.0 <= density <= 1.0:
                raise CostModelError(f"invalid source density {density}")
        if not 0.0 <= self.sparse_density_threshold <= 1.0:
            raise CostModelError(
                f"invalid sparse density threshold {self.sparse_density_threshold}"
            )
        if not self.source_mapped_rows:
            self.source_mapped_rows = [self.n_target_rows] * len(self.source_shapes)
        if len(self.source_mapped_rows) > len(self.source_shapes):
            raise CostModelError(
                f"source_mapped_rows has {len(self.source_mapped_rows)} entries for "
                f"{len(self.source_shapes)} sources"
            )
        for mapped in self.source_mapped_rows:
            if mapped < 0 or mapped > self.n_target_rows:
                raise CostModelError(
                    f"invalid mapped-row count {mapped} for {self.n_target_rows} target rows"
                )

    # -- derived ratios (the Morpheus heuristic's inputs) --------------------------------
    @property
    def n_sources(self) -> int:
        return len(self.source_shapes)

    @property
    def total_source_cells(self) -> int:
        return sum(rows * cols for rows, cols in self.source_shapes)

    @property
    def target_cells(self) -> int:
        return self.n_target_rows * self.n_target_columns

    @property
    def tuple_ratio(self) -> float:
        """r_T over the rows of the largest (base) source."""
        base_rows = max(rows for rows, _ in self.source_shapes)
        return self.n_target_rows / base_rows if base_rows else 0.0

    @property
    def smallest_source_tuple_ratio(self) -> float:
        """r_T over the rows of the smallest source (Morpheus' per-join ratio)."""
        smallest = min(rows for rows, _ in self.source_shapes if rows > 0)
        return self.n_target_rows / smallest if smallest else 0.0

    @property
    def feature_ratio(self) -> float:
        """c_T over the widest source's columns."""
        widest = max(cols for _, cols in self.source_shapes)
        return self.n_target_columns / widest if widest else 0.0

    # -- source-only ratios (what the Morpheus heuristic can see) --------------------------
    @property
    def source_tuple_ratio(self) -> float:
        """Largest source's rows over the smallest source's rows.

        This is the tuple ratio the Morpheus heuristic works with: it is
        computed from the source tables alone, assuming a key–foreign-key
        inner join, and is blind to how many rows actually reach the target.
        """
        rows = [r for r, _ in self.source_shapes if r > 0]
        if not rows:
            return 0.0
        return max(rows) / min(rows)

    @property
    def source_feature_ratio(self) -> float:
        """Total source columns over the entity (largest-rows) source's columns."""
        entity_rows, entity_columns = max(self.source_shapes, key=lambda shape: shape[0])
        total_columns = sum(cols for _, cols in self.source_shapes)
        if entity_columns == 0:
            return float(total_columns)
        return total_columns / entity_columns

    # -- backend dispatch (shared with repro.backends.AutoBackend) -------------------------
    def density_of(self, index: int) -> float:
        """Observed (or null-ratio-estimated) density of source ``index``."""
        if not 0 <= index < len(self.source_shapes):
            raise CostModelError(f"no source with index {index}")
        if index < len(self.source_densities):
            return self.source_densities[index]
        return 1.0 - (self.null_ratios[index] if index < len(self.null_ratios) else 0.0)

    def nnz_of(self, index: int) -> int:
        """Estimated stored-cell count of source ``index``."""
        rows, cols = self.source_shapes[index]
        return int(round(rows * cols * self.density_of(index)))

    def mapped_rows_of(self, index: int) -> int:
        """Target rows source ``index`` covers (``n_target_rows`` if unknown)."""
        if not 0 <= index < len(self.source_shapes):
            raise CostModelError(f"no source with index {index}")
        if index < len(self.source_mapped_rows):
            return self.source_mapped_rows[index]
        return self.n_target_rows

    def backend_choice(self, index: int) -> str:
        """Which kernel the density-threshold rule picks for source ``index``."""
        return (
            "sparse"
            if self.density_of(index) <= self.sparse_density_threshold
            else "dense"
        )

    @property
    def backend_choices(self) -> List[str]:
        """Per-source dense/sparse decisions, in factor order."""
        return [self.backend_choice(i) for i in range(len(self.source_shapes))]

    @property
    def any_sparse_source(self) -> bool:
        return any(choice == "sparse" for choice in self.backend_choices)

    @property
    def target_redundancy(self) -> float:
        """Fraction of target cells exceeding the sources' cells (≥ 0)."""
        if self.total_source_cells == 0:
            return 0.0
        extra = self.target_cells - self.total_source_cells
        return max(extra, 0) / self.target_cells if self.target_cells else 0.0

    @property
    def source_redundancy(self) -> float:
        """Fraction of source cells that are redundant w.r.t. the target."""
        if self.total_source_cells == 0:
            return 0.0
        return self.redundant_cells / self.total_source_cells

    @classmethod
    def from_dataset(
        cls, dataset, operand_columns: int = 1, has_full_tgds_only: Optional[bool] = None
    ) -> "CostParameters":
        """Derive parameters from an :class:`repro.matrices.IntegratedDataset`."""
        source_shapes = [(f.n_rows, f.n_columns) for f in dataset.factors]
        source_densities = [f.density for f in dataset.factors]
        redundant = sum(f.redundancy.n_redundant for f in dataset.factors)
        overlap_rows = 0
        overlap_columns = 0
        if dataset.n_sources >= 2:
            base = dataset.factors[0]
            other = dataset.factors[1]
            base_rows = set(base.indicator.mapped_target_rows())
            other_rows = set(other.indicator.mapped_target_rows())
            overlap_rows = len(base_rows & other_rows)
            base_cols = set(base.mapping.mapped_target_indices())
            other_cols = set(other.mapping.mapped_target_indices())
            overlap_columns = len(base_cols & other_cols)
        if has_full_tgds_only is None:
            from repro.metadata.mappings import ScenarioType

            has_full_tgds_only = dataset.scenario is ScenarioType.INNER_JOIN
        return cls(
            source_shapes=source_shapes,
            n_target_rows=dataset.n_target_rows,
            n_target_columns=len(dataset.target_columns),
            overlap_rows=overlap_rows,
            overlap_columns=overlap_columns,
            redundant_cells=redundant,
            has_full_tgds_only=has_full_tgds_only,
            operand_columns=operand_columns,
            source_densities=source_densities,
            source_mapped_rows=[f.indicator.n_mapped for f in dataset.factors],
        )

"""The Morpheus factorize/materialize heuristic (paper reference [27]).

Chen et al. decide with two ratios only:

* *tuple ratio* — rows of the entity (fact) table over rows of the
  dimension table; high values mean each dimension row is re-used many
  times in the (assumed key–foreign-key) join, which is where
  factorization saves work;
* *feature ratio* — total number of feature columns over the entity
  table's columns.

Both are computed from the **source tables alone**: the heuristic assumes
an inner key–foreign-key join and is blind to the actual dataset
relationship (how many rows really reach the target, overlapping columns,
redundancy, null ratios). Factorization is predicted when both ratios
clear fixed thresholds (defaults follow the original paper: 5 and 1).
The paper's §IV-B points out this only resolves the easy Area I cases of
Figure 5 and ignores every DI-metadata parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.parameters import CostParameters


@dataclass
class MorpheusRule:
    """Tuple-ratio / feature-ratio threshold heuristic."""

    tuple_ratio_threshold: float = 5.0
    feature_ratio_threshold: float = 1.0

    def predict_factorize(self, parameters: CostParameters) -> bool:
        """True when the heuristic chooses factorization."""
        return (
            parameters.source_tuple_ratio >= self.tuple_ratio_threshold
            and parameters.source_feature_ratio >= self.feature_ratio_threshold
        )

    def explain(self, parameters: CostParameters) -> str:
        return (
            f"tuple_ratio={parameters.source_tuple_ratio:.2f} "
            f"(threshold {self.tuple_ratio_threshold}), "
            f"feature_ratio={parameters.source_feature_ratio:.2f} "
            f"(threshold {self.feature_ratio_threshold})"
        )

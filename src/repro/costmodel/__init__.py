"""Cost estimation: factorize or materialize (paper §IV-B, Table III, Figure 5).

The package contains two decision procedures:

* :class:`MorpheusRule` — the state-of-the-art heuristic of Chen et al.
  (paper reference [27]) based on the tuple ratio and feature ratio only.
* :class:`AmalurCostModel` — the paper's proposal: an analytical cost model
  over FLOPs, memory traffic and data-transfer volume, parameterized by
  data-integration metadata (per-source shapes, overlap, redundancy in the
  sources and in the target, null ratios, and the tgd-based pruning rule
  of Example IV.1).
"""

from repro.costmodel.parameters import CostParameters
from repro.costmodel.morpheus_rule import MorpheusRule
from repro.costmodel.amalur_cost import AmalurCostModel, CostBreakdown
from repro.costmodel.decision import Decision, DecisionAdvisor, DecisionOutcome

__all__ = [
    "CostParameters",
    "MorpheusRule",
    "AmalurCostModel",
    "CostBreakdown",
    "Decision",
    "DecisionAdvisor",
    "DecisionOutcome",
]

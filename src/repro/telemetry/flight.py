"""Failure flight recorder: a post-mortem ring buffer for live services.

A :class:`FlightRecorder` keeps two fixed-size rings — the most recent
finished spans (fed by the tracer's span sink while telemetry is enabled)
and leveled structured events (fed directly by the serving / reliability
layers, telemetry session or not). When something goes wrong — a circuit
breaker opens, a delta-driven rebuild fails, an
:class:`~repro.exceptions.IntegrityError` surfaces — the layer that saw
it calls :func:`trigger`, and the recorder freezes a *dump*: the last N
spans, recent events, counter deltas since the previous dump, the
breaker-state map, the active fault plan and a memory breakdown. Dumps
stay readable in memory and, with a ``dump_dir``, are also written as
JSON files (events inside the dump are row-per-line dicts — the JSONL
shape — so a dump greps like a log).

Same facade contract as the rest of the telemetry package: the module
singleton is off by default, every producer call site tests the
module-level :data:`ACTIVE` boolean first, and :func:`install` /
:func:`clear` flip it.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.telemetry import tracer as _tracer
from repro.telemetry.tracer import SpanRecord, json_safe

__all__ = [
    "ACTIVE",
    "FlightRecorder",
    "clear",
    "get",
    "install",
    "note_breaker",
    "record_event",
    "trigger",
]

LEVELS = ("debug", "info", "warning", "error")

#: The one branch every producer call site tests.
ACTIVE = False

_state_lock = threading.Lock()
_recorder: Optional["FlightRecorder"] = None


class FlightRecorder:
    """Fixed-size recent-history rings plus triggered post-mortem dumps.

    Parameters
    ----------
    max_spans / max_events:
        Ring capacities; the oldest entry falls off when full.
    dump_dir:
        When set, every :meth:`trigger` also writes
        ``flight_<seq>_<reason>.json`` under this directory, pruned to
        ``max_dumps`` files.
    max_dumps:
        In-memory dumps retained (and on-disk files kept when
        ``dump_dir`` is set).
    clock:
        Wall-clock source for event / dump timestamps; injectable so
        tests produce stable output.
    """

    def __init__(
        self,
        max_spans: int = 256,
        max_events: int = 512,
        dump_dir: Optional[Path] = None,
        max_dumps: int = 8,
        clock: Callable[[], float] = time.time,
    ):
        self.max_spans = int(max_spans)
        self.max_events = int(max_events)
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.max_dumps = int(max_dumps)
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: Deque[Dict[str, Any]] = deque(maxlen=self.max_spans)
        self._events: Deque[Dict[str, Any]] = deque(maxlen=self.max_events)
        self._dumps: List[Dict[str, Any]] = []
        self._dump_seq = 0
        self._breaker_states: Dict[str, str] = {}
        self._last_counters: Dict[str, float] = {}

    # -- producers (hot-ish paths; each is one lock-guarded append) ---------------------
    def record_span(self, record: SpanRecord) -> None:
        entry = {
            "name": record.name,
            "tid": record.tid,
            "start_ns": record.start_ns,
            "duration_ns": record.duration_ns,
            "depth": record.depth,
            "parent": record.parent,
            "attrs": {key: json_safe(val) for key, val in record.attrs.items()},
        }
        with self._lock:
            self._spans.append(entry)

    def record_event(self, level: str, kind: str, **fields) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; expected one of {LEVELS}")
        entry = {
            "ts": self._clock(),
            "level": level,
            "kind": kind,
            **{key: json_safe(val) for key, val in fields.items()},
        }
        with self._lock:
            self._events.append(entry)

    def note_breaker(self, name: str, state: str) -> None:
        """Track a breaker's latest state (fed by its transitions)."""
        with self._lock:
            self._breaker_states[name] = state

    # -- dumps --------------------------------------------------------------------------
    def trigger(self, reason: str, **context) -> Dict[str, Any]:
        """Freeze and retain a post-mortem snapshot; returns the dump."""
        self.record_event("error", "flight.trigger", reason=reason, **context)
        dump = self._snapshot(reason, context)
        with self._lock:
            self._dump_seq += 1
            dump["seq"] = self._dump_seq
            self._dumps.append(dump)
            del self._dumps[: -self.max_dumps]
        if self.dump_dir is not None:
            self._write(dump)
        return dump

    def _snapshot(self, reason: str, context: Dict[str, Any]) -> Dict[str, Any]:
        from repro.reliability import faults as _faults
        from repro.telemetry import active_session
        from repro.telemetry.memory import rss_breakdown

        session = active_session()
        counters: Dict[str, float] = (
            session.metrics.counter_values() if session is not None else {}
        )
        with self._lock:
            previous = self._last_counters
            self._last_counters = counters
            spans = list(self._spans)
            events = list(self._events)
            breakers = dict(self._breaker_states)
        deltas = {
            name: value - previous.get(name, 0.0)
            for name, value in counters.items()
            if value != previous.get(name, 0.0)
        }
        injector = _faults.injector()
        fault_plan = None
        if injector is not None:
            fault_plan = {
                "plan": repr(injector.plan),
                "sites": {
                    site: {"hits": hits, "triggers": triggers}
                    for site, (hits, triggers) in injector.snapshot().items()
                },
            }
        return {
            "ts": self._clock(),
            "reason": reason,
            "context": {key: json_safe(val) for key, val in context.items()},
            "spans": spans,
            "events": events,
            "counter_deltas": deltas,
            "breaker_states": breakers,
            "fault_plan": fault_plan,
            "memory": rss_breakdown(),
        }

    def _write(self, dump: Dict[str, Any]) -> None:
        self.dump_dir.mkdir(parents=True, exist_ok=True)
        reason = "".join(
            ch if ch.isalnum() or ch in "-_" else "-" for ch in dump["reason"]
        )
        path = self.dump_dir / f"flight_{dump['seq']:04d}_{reason}.json"
        path.write_text(json.dumps(dump, indent=2, sort_keys=True) + "\n")
        existing = sorted(self.dump_dir.glob("flight_*.json"))
        for stale in existing[: -self.max_dumps]:
            stale.unlink()

    # -- consumers ----------------------------------------------------------------------
    @property
    def dumps(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._dumps)

    @property
    def spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._spans)

    @property
    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def events_jsonl(self) -> str:
        """The event ring as JSON-lines text (one dict per line)."""
        with self._lock:
            return "\n".join(json.dumps(e, sort_keys=True) for e in self._events)


def install(
    recorder: Optional[FlightRecorder] = None, **kwargs
) -> FlightRecorder:
    """Activate a recorder (constructing one from ``kwargs`` if omitted).

    Also connects the tracer span sink so finished spans (while a
    telemetry session is enabled) land in the recorder's span ring.
    """
    global ACTIVE, _recorder
    if recorder is None:
        recorder = FlightRecorder(**kwargs)
    with _state_lock:
        _recorder = recorder
        _tracer.SPAN_SINK = recorder.record_span
        ACTIVE = True
    return recorder


def clear() -> None:
    """Deactivate the flight recorder (idempotent)."""
    global ACTIVE, _recorder
    with _state_lock:
        ACTIVE = False
        _recorder = None
        _tracer.SPAN_SINK = None


def get() -> Optional[FlightRecorder]:
    return _recorder


# -- producer facade (what serving / reliability call) ----------------------------------
def record_event(level: str, kind: str, **fields) -> None:
    if not ACTIVE:
        return
    recorder = _recorder
    if recorder is not None:
        recorder.record_event(level, kind, **fields)


def note_breaker(name: str, state: str) -> None:
    if not ACTIVE:
        return
    recorder = _recorder
    if recorder is not None:
        recorder.note_breaker(name, state)


def trigger(reason: str, **context) -> Optional[Dict[str, Any]]:
    """Trigger a post-mortem dump on the active recorder (no-op while off)."""
    if not ACTIVE:
        return None
    recorder = _recorder
    if recorder is not None:
        return recorder.trigger(reason, **context)
    return None

"""Flat run reports: one schema for benches, CI guards and calibration.

A :class:`RunReport` is the JSON-friendly summary of a telemetry session:
per-span wall/CPU aggregates, every counter and gauge, histogram series
(loss curves), and the memory probe snapshot. The three ``bench_*.py``
scripts embed this schema verbatim in their guard JSON, and the module
doubles as a CLI::

    python -m repro.telemetry.report show  benchmarks/results/PIPELINE_RUN_REPORT.json
    python -m repro.telemetry.report diff  old_report.json new_report.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, Path]

#: Schema tag embedded in every serialized report.
REPORT_VERSION = 1


@dataclass
class RunReport:
    """Structured summary of one telemetry session."""

    meta: Dict[str, Any] = field(default_factory=dict)
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    memory: Dict[str, int] = field(default_factory=dict)

    # -- serialization ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": REPORT_VERSION,
            "meta": self.meta,
            "spans": self.spans,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "memory": self.memory,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunReport":
        return cls(
            meta=dict(payload.get("meta", {})),
            spans=dict(payload.get("spans", {})),
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
            histograms=dict(payload.get("histograms", {})),
            memory=dict(payload.get("memory", {})),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: PathLike) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: PathLike) -> "RunReport":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- rendering ----------------------------------------------------------------------
    def render_text(self) -> str:
        lines: List[str] = ["== run report =="]
        if self.meta:
            for key in sorted(self.meta):
                lines.append(f"  {key}: {self.meta[key]}")
        if self.memory:
            peak = self.memory.get("peak_rss_bytes", 0)
            sampled = self.memory.get("sampled_peak_rss_bytes", 0)
            lines.append(
                f"memory: peak_rss={_fmt_bytes(peak)} "
                f"sampled_peak={_fmt_bytes(sampled)} "
                f"samples={self.memory.get('n_samples', 0)}"
            )
            anonymous = self.memory.get("final_anonymous_bytes")
            file_backed = self.memory.get("final_file_backed_bytes")
            if anonymous is not None or file_backed is not None:
                lines.append(
                    f"        rss breakdown: anonymous={_fmt_bytes(anonymous or 0)} "
                    f"file_backed={_fmt_bytes(file_backed or 0)} "
                    f"(of {_fmt_bytes(self.memory.get('final_rss_bytes', 0))} final)"
                )
        if self.spans:
            lines.append("spans (by total wall time):")
            ordered = sorted(
                self.spans.items(), key=lambda item: item[1].get("total_s", 0.0),
                reverse=True,
            )
            for name, stats in ordered:
                lines.append(
                    f"  {name:<32} n={int(stats.get('count', 0)):>6} "
                    f"wall={stats.get('total_s', 0.0):>10.4f}s "
                    f"cpu={stats.get('cpu_s', 0.0):>10.4f}s "
                    f"max={stats.get('max_s', 0.0):.4f}s"
                )
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<40} {_fmt_number(self.counters[name])}")
        if self.gauges:
            lines.append("gauges:")
            for name in sorted(self.gauges):
                lines.append(f"  {name:<40} {_fmt_number(self.gauges[name])}")
        if self.histograms:
            lines.append("histograms:")
            for name in sorted(self.histograms):
                summary = self.histograms[name]
                lines.append(
                    f"  {name:<32} n={summary.get('count', 0)} "
                    f"mean={_fmt_number(summary.get('mean', 0.0))} "
                    f"min={_fmt_number(summary.get('min', 0.0))} "
                    f"max={_fmt_number(summary.get('max', 0.0))} "
                    f"last={_fmt_number(summary.get('last', 0.0))}"
                )
        return "\n".join(lines)


def build_report(session) -> RunReport:
    """Snapshot a :class:`~repro.telemetry.TelemetrySession` into a report."""
    finished = session.finished_at
    import time as _time

    duration = (finished if finished is not None else _time.time()) - session.started_at
    meta = {
        "created_at": session.started_at,
        "duration_s": duration,
        "pid": os.getpid(),
        "python": sys.version.split()[0],
    }
    return RunReport(
        meta=meta,
        spans=session.tracer.aggregate(),
        counters=session.metrics.counter_values(),
        gauges=session.metrics.gauge_values(),
        histograms=session.metrics.histogram_summaries(),
        memory=session.memory_snapshot(),
    )


# -- diffing ---------------------------------------------------------------------------
def diff_reports(a: RunReport, b: RunReport) -> str:
    """Human-readable comparison of two run reports (b relative to a)."""
    lines: List[str] = ["== report diff (b vs a) =="]
    lines.append("spans:")
    for name in sorted(set(a.spans) | set(b.spans)):
        wall_a = a.spans.get(name, {}).get("total_s", 0.0)
        wall_b = b.spans.get(name, {}).get("total_s", 0.0)
        lines.append(f"  {name:<32} a={wall_a:>10.4f}s b={wall_b:>10.4f}s {_ratio(wall_a, wall_b)}")
    changed = [
        name
        for name in sorted(set(a.counters) | set(b.counters))
        if a.counters.get(name, 0.0) != b.counters.get(name, 0.0)
    ]
    lines.append("counters (changed):" if changed else "counters: identical")
    for name in changed:
        va = a.counters.get(name, 0.0)
        vb = b.counters.get(name, 0.0)
        lines.append(
            f"  {name:<40} a={_fmt_number(va)} b={_fmt_number(vb)} "
            f"delta={_fmt_number(vb - va)}"
        )
    peak_a = a.memory.get("peak_rss_bytes", 0)
    peak_b = b.memory.get("peak_rss_bytes", 0)
    lines.append(
        f"memory: peak_rss a={_fmt_bytes(peak_a)} b={_fmt_bytes(peak_b)} "
        f"{_ratio(peak_a, peak_b)}"
    )
    return "\n".join(lines)


def _ratio(a: float, b: float) -> str:
    if a <= 0:
        return "(new)" if b > 0 else ""
    return f"x{b / a:.3f}"


def _fmt_number(value) -> str:
    try:
        number = float(value)
    except (TypeError, ValueError):
        return str(value)
    if number.is_integer() and abs(number) < 1e15:
        return f"{int(number):,}"
    return f"{number:.6g}"


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}GiB"  # pragma: no cover - unreachable


# -- CLI -------------------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Render or diff telemetry run reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    show = sub.add_parser("show", help="render a run report")
    show.add_argument("report", type=Path)
    show.add_argument("--json", action="store_true", help="emit JSON instead of text")
    diff = sub.add_parser("diff", help="diff two run reports (b vs a)")
    diff.add_argument("report_a", type=Path)
    diff.add_argument("report_b", type=Path)
    args = parser.parse_args(argv)

    if args.command == "show":
        report = RunReport.load(args.report)
        print(report.to_json() if args.json else report.render_text())
        return 0
    report_a = RunReport.load(args.report_a)
    report_b = RunReport.load(args.report_b)
    print(diff_reports(report_a, report_b))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""Metric instruments: counters, gauges and histograms.

A :class:`MetricsRegistry` is the session-scoped home of every named
instrument. Instruments are created on first touch (``registry.counter(
"flops.lmm.local")``), accumulate as plain Python floats, and snapshot
into the run report. The FLOP counters mirror the legacy
:class:`repro.factorized.ops_counter.FlopCounter` labels exactly — the
parity tests assert value-for-value equality.

Thread safety: the registry lock guards instrument *creation*; each
instrument carries its own lock guarding *updates*, so parallel-engine
workers (and serving threads) incrementing the same counter never lose an
update. The disabled path is contention-free by construction — call
sites guard on ``telemetry.ENABLED`` before ever reaching an instrument,
so no lock is touched (or even allocated) when telemetry is off.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.telemetry.tracer import json_safe


class Counter:
    """A monotonically increasing sum; updates are atomic under a lock."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins instantaneous value, tracking its high-water mark.

    ``max`` keeps the largest value ever set, so bursty signals sampled at
    set-time (the serving queue depth) survive into the report even when
    the final value is back to zero.
    """

    __slots__ = ("name", "value", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.value = value
            if value > self.max:
                self.max = value


class Histogram:
    """An ordered series of observations (e.g. the GD loss curve).

    Every observation is kept — series in this codebase are bounded by
    iteration counts, and the full curve is what the report consumers
    (loss-curve plots, convergence diffs) need.
    """

    __slots__ = ("name", "values", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    def summary(self) -> Dict[str, object]:
        with self._lock:
            values = list(self.values)
        if not values:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "last": 0.0, "values": []}
        return {
            "count": len(values),
            "total": sum(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
            "last": values[-1],
            "values": list(values),
        }


class MetricsRegistry:
    """Named instruments, created on first use; thread-safe."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram(name))
        return histogram

    # -- report snapshots ---------------------------------------------------------------
    def counter_values(self) -> Dict[str, float]:
        with self._lock:
            return {name: json_safe(c.value) for name, c in sorted(self._counters.items())}

    def gauge_values(self) -> Dict[str, float]:
        """Final gauge values, plus a ``<name>.max`` high-water entry for
        gauges whose peak exceeded their final value (queue depths)."""
        with self._lock:
            values: Dict[str, float] = {}
            for name, gauge in sorted(self._gauges.items()):
                values[name] = json_safe(gauge.value)
                if gauge.max > gauge.value:
                    values[name + ".max"] = json_safe(gauge.max)
            return values

    def histogram_summaries(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {name: h.summary() for name, h in sorted(self._histograms.items())}

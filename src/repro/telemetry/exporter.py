"""OpenMetrics export: Prometheus-text rendering and a scrape endpoint.

Two halves:

* **Rendering** — :class:`MetricFamily` is the one-shot unit of
  exposition (a name, a type, labeled samples); :func:`render` turns a
  list of families into OpenMetrics text (``# TYPE`` headers, ``_total``
  counter samples, ``quantile``-labeled summaries, terminating
  ``# EOF``); :func:`registry_families` adapts a telemetry session's
  :class:`~repro.telemetry.metrics.MetricsRegistry` so everything the
  offline tier counts is scrapeable too. :func:`validate_openmetrics` is
  the structural checker the CI obs-guard (and the concurrency tests) run
  against every scrape — every line must parse, every sample's family
  must be declared, no ``(name, labels)`` pair may repeat, the text must
  end with ``# EOF``.

* **Serving** — :class:`MetricsServer` is a stdlib
  ``http.server.ThreadingHTTPServer`` on a daemon thread with two
  routes: ``GET /metrics`` (the exposition) and ``GET /health`` (JSON
  status; 200 while healthy, 503 when any session is degraded or a
  breaker is open). Render callables are invoked per request, and every
  instrument snapshots under its own lock, so scraping concurrently with
  traffic never observes a torn value.

The server binds ``127.0.0.1`` by default and port 0 picks an ephemeral
port (read it back from :attr:`MetricsServer.port`) — the test- and
CI-friendly default.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "MetricFamily",
    "MetricsServer",
    "metric_name",
    "registry_families",
    "render",
    "validate_openmetrics",
]

#: Exposition types this exporter emits.
FAMILY_TYPES = ("counter", "gauge", "summary", "info", "unknown")

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>\S+))?$"
)
_LABEL_PAIR = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


def metric_name(name: str, prefix: str = "repro") -> str:
    """A dotted internal name as a valid Prometheus metric name."""
    flat = _INVALID_CHARS.sub("_", name.strip())
    if not flat:
        flat = "unnamed"
    if prefix:
        flat = f"{prefix}_{flat}"
    if not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


class MetricFamily:
    """One exposition family: a metric name, type, help and its samples.

    Samples are ``(suffix, labels, value)`` tuples; the suffix is
    appended to the family name (``_total`` for counter samples,
    ``_count`` / ``_sum`` for summaries, empty for gauges and quantile
    samples).
    """

    __slots__ = ("name", "type", "help", "samples")

    def __init__(self, name: str, family_type: str, help_text: str = ""):
        if family_type not in FAMILY_TYPES:
            raise ValueError(
                f"unknown family type {family_type!r}; expected one of {FAMILY_TYPES}"
            )
        if not _NAME_OK.match(name):
            raise ValueError(f"invalid metric family name {name!r}")
        self.name = name
        self.type = family_type
        self.help = help_text
        self.samples: List[Tuple[str, Dict[str, Any], float]] = []

    def add(self, value: float, suffix: str = "", **labels) -> "MetricFamily":
        self.samples.append((suffix, labels, float(value)))
        return self

    def render_lines(self) -> List[str]:
        lines = [f"# TYPE {self.name} {self.type}"]
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        for suffix, labels, value in self.samples:
            label_text = ""
            if labels:
                inner = ",".join(
                    f'{key}="{_escape_label(val)}"' for key, val in sorted(labels.items())
                )
                label_text = "{" + inner + "}"
            lines.append(f"{self.name}{suffix}{label_text} {_format_value(value)}")
        return lines


def render(families: Sequence[MetricFamily]) -> str:
    """OpenMetrics text for the families, terminated by ``# EOF``."""
    lines: List[str] = []
    for family in families:
        lines.extend(family.render_lines())
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def registry_families(
    registry, prefix: str = "repro_telemetry"
) -> List[MetricFamily]:
    """Families for a :class:`~repro.telemetry.metrics.MetricsRegistry`
    snapshot: counters as counters, gauges as gauges, histograms as
    count/sum summaries (the offline tier keeps raw series, not buckets).

    The distinct ``repro_telemetry_`` prefix keeps session-registry names
    (``serving.requests``, ``serving.queue_depth``, …) from colliding
    with the live SLO / service families in one exposition.
    """
    families: List[MetricFamily] = []
    for name, value in registry.counter_values().items():
        families.append(
            MetricFamily(metric_name(name, prefix), "counter").add(
                value, suffix="_total"
            )
        )
    for name, value in registry.gauge_values().items():
        families.append(MetricFamily(metric_name(name, prefix), "gauge").add(value))
    for name, summary in registry.histogram_summaries().items():
        family = MetricFamily(metric_name(name, prefix), "summary")
        family.add(summary.get("count", 0), suffix="_count")
        family.add(summary.get("total", 0.0), suffix="_sum")
        families.append(family)
    return families


def slo_families(snapshots: Sequence[Dict[str, Any]]) -> List[MetricFamily]:
    """Families for :meth:`~repro.telemetry.live.SloTracker.snapshot`
    dicts: lifetime outcome counters, windowed rates/ratios, and the
    latency summary with p50/p90/p99 quantile samples."""
    requests = MetricFamily(
        "repro_serving_requests", "counter",
        "Requests by session and outcome (lifetime).",
    )
    rate = MetricFamily(
        "repro_serving_request_rate", "gauge",
        "Requests per second over the rolling window.",
    )
    ratios = MetricFamily(
        "repro_serving_failure_ratio", "gauge",
        "Failure fraction of windowed requests, by failure mode.",
    )
    latency = MetricFamily(
        "repro_serving_latency_seconds", "summary",
        "Completed-request latency over the rolling window.",
    )
    for snapshot in snapshots:
        session = snapshot["session"]
        for outcome, count in snapshot["lifetime"].items():
            requests.add(count, suffix="_total", session=session, outcome=outcome)
        rate.add(snapshot["request_rate"], session=session)
        for mode in ("error", "shed", "timeout", "breaker_open", "rejected"):
            ratios.add(snapshot[f"{mode}_rate"], session=session, mode=mode)
        stats = snapshot["latency"]
        for q_label, q_key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            latency.add(stats[q_key], session=session, quantile=q_label)
        latency.add(stats["count"], suffix="_count", session=session)
        latency.add(stats["sum"], suffix="_sum", session=session)
    return [requests, rate, ratios, latency]


# -- validation --------------------------------------------------------------------------
_SUFFIXES = ("_total", "_count", "_sum", "_bucket", "_created")


def validate_openmetrics(text: str) -> List[str]:
    """Structural errors in an exposition (empty list = valid).

    Checks: UTF-8 text ending in ``# EOF``; every line is a well-formed
    comment or sample; sample values parse as floats; labels parse;
    every sample belongs to a family declared by an earlier ``# TYPE``
    line; no family is declared twice; no ``(name, labels)`` sample
    repeats. This is what the CI obs-guard and the concurrent-scrape
    tests run on every fetched exposition.
    """
    errors: List[str] = []
    declared: Dict[str, str] = {}
    seen_samples = set()
    lines = text.split("\n")
    if not text.endswith("\n"):
        errors.append("exposition must end with a newline")
    stripped = [line for line in lines if line]
    if not stripped or stripped[-1] != "# EOF":
        errors.append("exposition must terminate with '# EOF'")
    for index, line in enumerate(lines, start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 2 or parts[0] != "#":
                errors.append(f"line {index}: malformed comment {line!r}")
                continue
            keyword = parts[1]
            if keyword == "EOF":
                continue
            if keyword not in ("TYPE", "HELP", "UNIT"):
                errors.append(f"line {index}: unknown directive {keyword!r}")
                continue
            if len(parts) < 3 or not _NAME_OK.match(parts[2]):
                errors.append(f"line {index}: {keyword} names no valid metric")
                continue
            if keyword == "TYPE":
                name, family_type = parts[2], parts[3] if len(parts) > 3 else ""
                if family_type not in FAMILY_TYPES + ("histogram", "stateset"):
                    errors.append(f"line {index}: unknown TYPE {family_type!r}")
                if name in declared:
                    errors.append(f"line {index}: family {name!r} declared twice")
                declared[name] = family_type
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            errors.append(f"line {index}: malformed sample {line!r}")
            continue
        name = match.group("name")
        family = name
        if family not in declared:
            for suffix in _SUFFIXES:
                if name.endswith(suffix) and name[: -len(suffix)] in declared:
                    family = name[: -len(suffix)]
                    break
        if family not in declared:
            errors.append(f"line {index}: sample {name!r} has no TYPE declaration")
        label_text = match.group("labels")
        labels = ()
        if label_text:
            pairs = _split_labels(label_text)
            if pairs is None:
                errors.append(f"line {index}: malformed labels {label_text!r}")
            else:
                labels = tuple(sorted(pairs))
        try:
            float(match.group("value"))
        except ValueError:
            errors.append(f"line {index}: value {match.group('value')!r} is not a number")
        key = (name, labels)
        if key in seen_samples:
            errors.append(f"line {index}: duplicate sample {name!r} {dict(labels)}")
        seen_samples.add(key)
    return errors


def _split_labels(text: str) -> Optional[List[Tuple[str, str]]]:
    """``k="v",k2="v2"`` into pairs, honoring escaped quotes; None if bad."""
    pairs: List[Tuple[str, str]] = []
    buffer = ""
    in_quotes = False
    escaped = False
    parts: List[str] = []
    for char in text:
        if escaped:
            buffer += char
            escaped = False
            continue
        if char == "\\" and in_quotes:
            buffer += char
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            buffer += char
            continue
        if char == "," and not in_quotes:
            parts.append(buffer)
            buffer = ""
            continue
        buffer += char
    if in_quotes:
        return None
    if buffer:
        parts.append(buffer)
    for part in parts:
        match = _LABEL_PAIR.match(part.strip())
        if match is None:
            return None
        pairs.append((match.group("key"), match.group("value")))
    return pairs


# -- the endpoint ------------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._respond_metrics()
        elif path == "/health":
            self._respond_health()
        else:
            self._send(404, "text/plain; charset=utf-8", "not found\n")

    def _respond_metrics(self) -> None:
        try:
            body = self.server.render_metrics()  # type: ignore[attr-defined]
        except Exception as error:  # pragma: no cover - defensive: keep scraping alive
            self._send(500, "text/plain; charset=utf-8", f"render failed: {error}\n")
            return
        self._send(
            200,
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            body,
        )

    def _respond_health(self) -> None:
        try:
            payload = self.server.render_health()  # type: ignore[attr-defined]
        except Exception as error:  # pragma: no cover - defensive
            payload = {"status": "error", "error": str(error)}
        status = 200 if payload.get("status") == "ok" else 503
        self._send(
            status, "application/json; charset=utf-8",
            json.dumps(payload, sort_keys=True) + "\n",
        )

    def _send(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, *args) -> None:  # scrapes never spam stderr
        pass


class MetricsServer:
    """A ``/metrics`` + ``/health`` endpoint on a daemon thread.

    Parameters
    ----------
    render_metrics:
        Zero-argument callable returning the OpenMetrics text for one
        scrape (invoked per request — always current).
    render_health:
        Zero-argument callable returning the health JSON dict; a
        ``status`` other than ``"ok"`` is served with HTTP 503.
    host / port:
        Bind address. Port 0 (the default) picks an ephemeral port;
        read the bound one from :attr:`port`.
    """

    def __init__(
        self,
        render_metrics: Callable[[], str],
        render_health: Callable[[], Dict[str, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.render_metrics = render_metrics  # type: ignore[attr-defined]
        self._httpd.render_health = render_health  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics-http", daemon=True
        )
        self._thread.start()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    def url(self, path: str = "/metrics") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def stop(self) -> None:
        """Shut the endpoint down (idempotent, joins the server thread)."""
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None

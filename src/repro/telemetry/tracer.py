"""Span tracer: nestable wall/CPU-timed spans with Chrome-trace export.

Spans nest per thread (a thread-local stack records depth and parent), are
cheap to open/close (two clock reads and one lock-protected list append on
exit) and carry free-form attributes. The finished-span list renders in two
forms: the Chrome ``trace_event`` JSON that ``chrome://tracing`` / Perfetto
load directly, and the per-name aggregate table of the flat run report.

The tracer itself never consults the global enable flag — that is the job
of :mod:`repro.telemetry`'s ``span()`` facade, which hands out the shared
:data:`NOOP_SPAN` when telemetry is disabled so the disabled cost of an
instrumented call site is a single branch.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional


def json_safe(value: Any) -> Any:
    """Coerce a span attribute / metric value into a JSON-serializable one.

    Numpy scalars (not JSON-serializable) become plain ints/floats;
    anything non-numeric that is not already a JSON primitive falls back to
    ``str``.
    """
    if value is None or isinstance(value, (bool, str, int, float)):
        return value
    try:
        number = float(value)
    except (TypeError, ValueError):
        return str(value)
    if number.is_integer() and abs(number) < 2**53:
        return int(number)
    return number


class NoopSpan:
    """The do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "NoopSpan":
        return self


#: Shared singleton: disabled call sites allocate nothing per span.
NOOP_SPAN = NoopSpan()

#: Optional callback invoked with every finished :class:`SpanRecord`
#: (across all tracers). The flight recorder installs itself here so its
#: span ring sees the same records the session tracer keeps. ``None``
#: (the default) costs one attribute load per finished span.
SPAN_SINK = None


class SpanRecord:
    """One finished span: timing, thread, nesting and attributes."""

    __slots__ = ("name", "tid", "start_ns", "duration_ns", "cpu_ns", "depth", "parent", "attrs")

    def __init__(
        self,
        name: str,
        tid: int,
        start_ns: int,
        duration_ns: int,
        cpu_ns: int,
        depth: int,
        parent: Optional[str],
        attrs: Dict[str, Any],
    ):
        self.name = name
        self.tid = tid
        #: Start offset in ns relative to the tracer's creation.
        self.start_ns = start_ns
        self.duration_ns = duration_ns
        self.cpu_ns = cpu_ns
        self.depth = depth
        self.parent = parent
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    @property
    def cpu_s(self) -> float:
        return self.cpu_ns / 1e9

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SpanRecord({self.name!r}, wall={self.duration_s:.6f}s, "
            f"depth={self.depth}, parent={self.parent!r})"
        )


class Span:
    """An open span; a context manager that records itself on exit."""

    __slots__ = ("_tracer", "name", "attrs", "depth", "parent", "_start_ns", "_cpu_start_ns")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.parent: Optional[str] = None
        self._start_ns = 0
        self._cpu_start_ns = 0

    def set(self, **attrs) -> "Span":
        """Attach attributes after the span opened (e.g. output row counts)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            self.parent = stack[-1].name
            self.depth = len(stack)
        stack.append(self)
        self._cpu_start_ns = time.thread_time_ns()
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        end_ns = time.perf_counter_ns()
        cpu_ns = time.thread_time_ns() - self._cpu_start_ns
        if exc_type is not None:
            # A span that ended in an exception says so — post-mortems
            # (flight recorder dumps) read this to find the failing request.
            self.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._record(
            SpanRecord(
                name=self.name,
                tid=threading.get_ident(),
                start_ns=self._start_ns - self._tracer._t0_ns,
                duration_ns=end_ns - self._start_ns,
                cpu_ns=cpu_ns,
                depth=self.depth,
                parent=self.parent,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Collects finished spans; thread-safe, per-thread nesting stacks."""

    def __init__(self):
        self._t0_ns = time.perf_counter_ns()
        self.started_at = time.time()
        self._records: List[SpanRecord] = []
        self._thread_names: Dict[int, str] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        return Span(self, name, dict(attrs) if attrs else {})

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
            if record.tid not in self._thread_names:
                self._thread_names[record.tid] = threading.current_thread().name
        sink = SPAN_SINK
        if sink is not None:
            sink(record)

    @property
    def thread_names(self) -> Dict[int, str]:
        """Thread id → name, for every thread that finished a span."""
        with self._lock:
            return dict(self._thread_names)

    @property
    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name totals for the flat run report."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            entry = out.get(record.name)
            if entry is None:
                out[record.name] = {
                    "count": 1,
                    "total_s": record.duration_s,
                    "cpu_s": record.cpu_s,
                    "min_s": record.duration_s,
                    "max_s": record.duration_s,
                }
            else:
                entry["count"] += 1
                entry["total_s"] += record.duration_s
                entry["cpu_s"] += record.cpu_s
                entry["min_s"] = min(entry["min_s"], record.duration_s)
                entry["max_s"] = max(entry["max_s"], record.duration_s)
        return out

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` JSON object (load in Perfetto or
        ``chrome://tracing``); one complete ("X") event per finished span,
        timestamps in microseconds relative to tracer creation. Leading
        ``thread_name`` metadata ("M") events label each lane with its
        Python thread name, so Perfetto shows ``repro-par-4_0`` /
        ``amalur-serve-1`` instead of bare numeric TIDs."""
        pid = os.getpid()
        events: List[Dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_name},
            }
            for tid, thread_name in sorted(self.thread_names.items())
        ]
        for record in self.records:
            events.append(
                {
                    "name": record.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": record.start_ns / 1e3,
                    "dur": record.duration_ns / 1e3,
                    "pid": pid,
                    "tid": record.tid,
                    "args": {key: json_safe(val) for key, val in record.attrs.items()},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

"""Process-memory probes: current/peak RSS and a background sampler.

:func:`peak_rss_bytes` is byte-for-byte the measurement the CI
streaming-guard takes by hand (``getrusage(RUSAGE_SELF).ru_maxrss``), so a
telemetry run report and the guard agree on the high-water mark by
construction. :func:`current_rss_bytes` reads the instantaneous resident
set from ``/proc/self/statm`` (Linux; falls back to the high-water mark
elsewhere), which is what the :class:`RssSampler` thread records to show
*when* in a run the memory went.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

#: ru_maxrss unit: bytes on macOS, kilobytes everywhere else (Linux).
_RU_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def peak_rss_bytes() -> int:
    """Process peak resident set size in bytes (the getrusage high-water
    mark — the exact measurement the CI streaming-guard budgets against)."""
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * _RU_MAXRSS_UNIT


def current_rss_bytes() -> int:
    """Instantaneous resident set size in bytes (0 if unreadable)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return peak_rss_bytes()


class RssSampler:
    """Background thread sampling the resident set at a fixed interval."""

    def __init__(self, interval: float = 0.05):
        self.interval = float(interval)
        self._stop_event = threading.Event()
        self._lock = threading.Lock()
        self._samples: List[Tuple[float, int]] = []
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry-rss", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        self._sample()
        while not self._stop_event.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        sample = (time.time(), current_rss_bytes())
        with self._lock:
            self._samples.append(sample)

    def stop(self) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    @property
    def samples(self) -> List[Tuple[float, int]]:
        with self._lock:
            return list(self._samples)

    @property
    def sampled_peak_bytes(self) -> int:
        samples = self.samples
        return max((rss for _, rss in samples), default=0)

    def snapshot(self) -> Dict[str, int]:
        """The memory section of the run report."""
        return {
            "peak_rss_bytes": peak_rss_bytes(),
            "sampled_peak_rss_bytes": self.sampled_peak_bytes,
            "n_samples": len(self.samples),
        }

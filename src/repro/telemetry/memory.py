"""Process-memory probes: current/peak RSS and a background sampler.

:func:`peak_rss_bytes` is byte-for-byte the measurement the CI
streaming-guard takes by hand (``getrusage(RUSAGE_SELF).ru_maxrss``), so a
telemetry run report and the guard agree on the high-water mark by
construction. :func:`current_rss_bytes` reads the instantaneous resident
set from ``/proc/self/statm`` (Linux; falls back to the high-water mark
elsewhere), which is what the :class:`RssSampler` thread records to show
*when* in a run the memory went.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

#: ru_maxrss unit: bytes on macOS, kilobytes everywhere else (Linux).
_RU_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def peak_rss_bytes() -> int:
    """Process peak resident set size in bytes (the getrusage high-water
    mark — the exact measurement the CI streaming-guard budgets against)."""
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * _RU_MAXRSS_UNIT


def current_rss_bytes() -> int:
    """Instantaneous resident set size in bytes (0 if unreadable)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return peak_rss_bytes()


def rss_breakdown() -> Dict[str, int]:
    """Resident set split into heap and file-backed pages.

    Reads ``/proc/self/smaps_rollup`` (one pre-summed line per field, far
    cheaper than walking ``/proc/self/smaps``): ``Anonymous`` is the
    heap/arena share of ``Rss``, and the remainder is file-backed —
    overwhelmingly the :class:`~repro.streaming.spill.SpillStore` memmaps
    in this codebase, so spill-page residency is attributed directly.
    Returns ``available: 0`` (with zeroed fields) where the file is
    missing (non-Linux, hardened /proc).
    """
    rss = anonymous = None
    try:
        with open("/proc/self/smaps_rollup", "rb") as handle:
            for line in handle:
                if line.startswith(b"Rss:"):
                    rss = int(line.split()[1]) * 1024
                elif line.startswith(b"Anonymous:"):
                    anonymous = int(line.split()[1]) * 1024
                if rss is not None and anonymous is not None:
                    break
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        pass
    if rss is None or anonymous is None:  # pragma: no cover - non-Linux
        return {"available": 0, "rss_bytes": 0, "anonymous_bytes": 0, "file_backed_bytes": 0}
    return {
        "available": 1,
        "rss_bytes": rss,
        "anonymous_bytes": anonymous,
        "file_backed_bytes": max(0, rss - anonymous),
    }


class RssSampler:
    """Background thread sampling the resident set at a fixed interval.

    Each tick also records the :func:`rss_breakdown` (heap vs file-backed
    pages) when ``/proc/self/smaps_rollup`` is available, so the run
    report can attribute a peak to spill memmaps vs ordinary allocations.
    """

    def __init__(self, interval: float = 0.05):
        self.interval = float(interval)
        self._stop_event = threading.Event()
        self._lock = threading.Lock()
        self._samples: List[Tuple[float, int]] = []
        self._breakdowns: List[Tuple[float, int, int]] = []
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry-rss", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        self._sample()
        while not self._stop_event.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        now = time.time()
        sample = (now, current_rss_bytes())
        breakdown = rss_breakdown()
        with self._lock:
            self._samples.append(sample)
            if breakdown["available"]:
                self._breakdowns.append(
                    (now, breakdown["anonymous_bytes"], breakdown["file_backed_bytes"])
                )

    def stop(self) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    @property
    def samples(self) -> List[Tuple[float, int]]:
        with self._lock:
            return list(self._samples)

    @property
    def breakdown_samples(self) -> List[Tuple[float, int, int]]:
        """``(time, anonymous_bytes, file_backed_bytes)`` ticks."""
        with self._lock:
            return list(self._breakdowns)

    @property
    def sampled_peak_bytes(self) -> int:
        samples = self.samples
        return max((rss for _, rss in samples), default=0)

    def snapshot(self) -> Dict[str, int]:
        """The memory section of the run report.

        The two ``sampled_peak_*_bytes`` peaks are taken independently
        over the tick series (they need not come from the same tick), so
        each answers "how high did this class of pages ever get".
        """
        breakdowns = self.breakdown_samples
        return {
            "peak_rss_bytes": peak_rss_bytes(),
            "sampled_peak_rss_bytes": self.sampled_peak_bytes,
            "n_samples": len(self.samples),
            "sampled_peak_anonymous_bytes": max((a for _, a, _ in breakdowns), default=0),
            "sampled_peak_file_backed_bytes": max((f for _, _, f in breakdowns), default=0),
        }

"""Pipeline telemetry: spans, counters and memory probes, ingest → training.

The subsystem is off by default and near-free while off: every
instrumented call site in the hot layers tests the module-level
:data:`ENABLED` boolean (one attribute load + branch) before doing any
work. Turning it on installs a :class:`TelemetrySession` — a
:class:`~repro.telemetry.tracer.Tracer` for nestable spans, a
:class:`~repro.telemetry.metrics.MetricsRegistry` for counters / gauges /
histograms, and an optional background RSS sampler — which renders into a
Chrome ``trace_event`` JSON and a flat :class:`~repro.telemetry.report.
RunReport`.

Typical use::

    from repro import telemetry

    with telemetry.collect() as session:
        dataset = amalur.integrate(...)
        amalur.train(dataset, spec)
    report = session.report()           # RunReport: spans/counters/memory
    trace = session.chrome_trace()      # load in Perfetto / chrome://tracing

Instrumented call sites use the module facade::

    from repro import telemetry as _telemetry

    with _telemetry.span("join.inner", left_rows=n) as sp:
        ...
        sp.set(out_rows=result.n_rows)

    if _telemetry.ENABLED:              # hot loops: guard the whole block
        _telemetry.counter_add("spill.bytes_read", block.nbytes)

Beyond this offline, session-scoped tier the package also houses the
*live* tier for long-running services: :mod:`repro.telemetry.live`
(always-on sliding-window SLO trackers), :mod:`repro.telemetry.exporter`
(OpenMetrics rendering and the ``/metrics`` + ``/health`` endpoint),
:mod:`repro.telemetry.flight` (the post-mortem flight recorder) and
:mod:`repro.telemetry.regress` (the bench-trajectory regression
detector, ``python -m repro.telemetry.regress``). Those are imported
explicitly by their consumers — nothing here changes the near-free
disabled cost of this facade.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.telemetry.memory import (
    RssSampler,
    current_rss_bytes,
    peak_rss_bytes,
    rss_breakdown,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.tracer import NOOP_SPAN, NoopSpan, Span, SpanRecord, Tracer

__all__ = [
    "ENABLED",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopSpan",
    "NOOP_SPAN",
    "RssSampler",
    "Span",
    "SpanRecord",
    "TelemetrySession",
    "Tracer",
    "active_session",
    "collect",
    "counter_add",
    "current_rss_bytes",
    "disable",
    "enable",
    "gauge_set",
    "is_enabled",
    "observe",
    "peak_rss_bytes",
    "record_op",
    "rss_breakdown",
    "run_report",
    "span",
]

#: The one branch every instrumented hot path tests. Mutated only by
#: :func:`enable` / :func:`disable`; read directly (``telemetry.ENABLED``)
#: so the disabled cost of a call site is a single attribute load.
ENABLED = False

_session: Optional["TelemetrySession"] = None
_state_lock = threading.Lock()


class TelemetrySession:
    """One enable→disable window of collected telemetry."""

    def __init__(self, sample_memory: bool = True, sample_interval: float = 0.05):
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.started_at = time.time()
        self.finished_at: Optional[float] = None
        self.sampler: Optional[RssSampler] = None
        if sample_memory:
            self.sampler = RssSampler(interval=sample_interval)
            self.sampler.start()

    def finish(self) -> None:
        """Stop background sampling; the session stays readable."""
        if self.finished_at is None:
            self.finished_at = time.time()
        if self.sampler is not None:
            self.sampler.stop()

    def memory_snapshot(self) -> dict:
        if self.sampler is not None:
            snapshot = self.sampler.snapshot()
        else:
            snapshot = {
                "peak_rss_bytes": peak_rss_bytes(),
                "sampled_peak_rss_bytes": 0,
                "n_samples": 0,
                "sampled_peak_anonymous_bytes": 0,
                "sampled_peak_file_backed_bytes": 0,
            }
        breakdown = rss_breakdown()
        if breakdown.get("available"):
            # Where the resident set sits *now*: anonymous (heap/arrays)
            # vs file-backed (mapped libraries, page cache) pages.
            snapshot["final_rss_bytes"] = breakdown["rss_bytes"]
            snapshot["final_anonymous_bytes"] = breakdown["anonymous_bytes"]
            snapshot["final_file_backed_bytes"] = breakdown["file_backed_bytes"]
        return snapshot

    def report(self):
        """Build the flat :class:`~repro.telemetry.report.RunReport`."""
        from repro.telemetry.report import build_report

        return build_report(self)

    def chrome_trace(self) -> dict:
        """The Chrome ``trace_event`` JSON object for this session."""
        return self.tracer.to_chrome_trace()


def enable(sample_memory: bool = True, sample_interval: float = 0.05) -> TelemetrySession:
    """Turn telemetry on with a fresh session (discarding any previous one)."""
    global ENABLED, _session
    with _state_lock:
        if _session is not None:
            _session.finish()
        _session = TelemetrySession(
            sample_memory=sample_memory, sample_interval=sample_interval
        )
        ENABLED = True
        return _session


def disable() -> Optional[TelemetrySession]:
    """Turn telemetry off; returns the (finished, still readable) session."""
    global ENABLED, _session
    with _state_lock:
        ENABLED = False
        session, _session = _session, None
        if session is not None:
            session.finish()
        return session


def is_enabled() -> bool:
    return ENABLED


def active_session() -> Optional[TelemetrySession]:
    return _session


@contextmanager
def collect(
    sample_memory: bool = True, sample_interval: float = 0.05
) -> Iterator[TelemetrySession]:
    """Enable telemetry for a block; the yielded session outlives the block
    (read ``session.report()`` / ``session.chrome_trace()`` after exit)."""
    session = enable(sample_memory=sample_memory, sample_interval=sample_interval)
    try:
        yield session
    finally:
        if _session is session:
            disable()
        else:  # a nested enable() replaced us; just stop our sampler
            session.finish()


# -- instrumentation facade (what the hot layers call) ----------------------------------
def span(name: str, **attrs):
    """A nestable span context manager; the shared no-op when disabled."""
    if not ENABLED:
        return NOOP_SPAN
    session = _session
    if session is None:  # pragma: no cover - disable() raced us
        return NOOP_SPAN
    return session.tracer.span(name, attrs)


def counter_add(name: str, amount: float = 1.0) -> None:
    if not ENABLED:
        return
    session = _session
    if session is not None:
        session.metrics.counter(name).add(amount)


def gauge_set(name: str, value: float) -> None:
    if not ENABLED:
        return
    session = _session
    if session is not None:
        session.metrics.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    if not ENABLED:
        return
    session = _session
    if session is not None:
        session.metrics.histogram(name).observe(value)


def record_op(name: str, seconds: float, flops: float) -> None:
    """Account one timed kernel call: ``<name>.calls/.seconds/.flops``."""
    if not ENABLED:
        return
    session = _session
    if session is not None:
        metrics = session.metrics
        metrics.counter(name + ".calls").add(1.0)
        metrics.counter(name + ".seconds").add(seconds)
        metrics.counter(name + ".flops").add(flops)


def run_report():
    """The :class:`~repro.telemetry.report.RunReport` of the active session
    (``None`` while telemetry is disabled)."""
    session = _session
    if session is None:
        return None
    return session.report()


def export_chrome_trace() -> Optional[dict]:
    """Chrome-trace JSON of the active session (``None`` while disabled)."""
    session = _session
    if session is None:
        return None
    return session.chrome_trace()

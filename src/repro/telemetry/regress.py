"""Perf-regression detector over the committed benchmark trajectory.

The repo commits one JSON per benchmark family under
``benchmarks/results/`` (``BENCH_OPERATORS.json``, ``BENCH_PIPELINE.json``,
…). Those files mix machine-invariant evidence (speedup ratios, parity
errors, overhead fractions, boolean guards) with absolute wall times that
depend on the machine that produced them. This module pins down the
invariant subset as a typed trajectory — :data:`TRAJECTORY` — and checks
it two ways:

* **audit** (the default) — every metric in the committed trajectory
  exists and satisfies its absolute bound. This is what the CI obs-guard
  runs: it catches a PR that commits a regressed benchmark file.

* **compare** (``--fresh DIR``) — a freshly generated results directory
  is audited *and* ratio metrics must retain at least ``retention`` of
  the committed baseline value (default 0.5: a fresh speedup may be up
  to 2x worse than the committed one before it counts as a regression —
  loose enough for machine variance, tight enough to catch a lost
  optimization).

Only ratios, parity errors, fractions and booleans are ever compared —
never absolute seconds. Metrics that need parallel hardware
(``BENCH_PARALLEL``'s scaling speedup) carry ``requires_cores`` and are
skipped, with a note, when the recorded run had fewer cores.

CLI::

    python -m repro.telemetry.regress                 # audit committed trajectory
    python -m repro.telemetry.regress --results DIR   # audit another directory
    python -m repro.telemetry.regress --fresh DIR     # compare DIR vs committed
    python -m repro.telemetry.regress --json OUT      # also write the findings
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["MetricSpec", "TRAJECTORY", "audit", "compare", "main"]

#: Metric kinds: how the value is bounded.
KINDS = ("higher", "lower", "parity", "bool")


class MetricSpec:
    """One machine-invariant metric inside a benchmark JSON.

    Parameters
    ----------
    path:
        Dotted path into the JSON document; a ``*`` segment expands over
        every key of the dict at that level (``cases.*.gd_iteration_speedup``).
    kind:
        ``higher`` — value must be >= ``bound`` (a floor: speedups,
        retention ratios). ``lower`` — value must be <= ``bound`` (a
        ceiling: overhead ratios, memory fractions). ``parity`` —
        ``abs(value)`` must be <= ``bound`` (numerical error).
        ``bool`` — value must be exactly ``True``.
    bound:
        The absolute bound; ``None`` for ``bool``.
    retention:
        For ``higher`` metrics in compare mode: fresh value must be
        >= ``retention * baseline``. ``None`` disables the relative check.
    requires_cores:
        Skip the metric (with a note) when the document's top-level
        ``cores`` is below this — scaling speedups are meaningless on
        one core.
    """

    __slots__ = ("path", "kind", "bound", "retention", "requires_cores", "description")

    def __init__(
        self,
        path: str,
        kind: str,
        bound: Optional[float] = None,
        retention: Optional[float] = None,
        requires_cores: int = 0,
        description: str = "",
    ):
        if kind not in KINDS:
            raise ValueError(f"unknown metric kind {kind!r}; expected one of {KINDS}")
        if kind != "bool" and bound is None:
            raise ValueError(f"metric {path!r} of kind {kind!r} needs a bound")
        self.path = path
        self.kind = kind
        self.bound = bound
        self.retention = retention
        self.requires_cores = int(requires_cores)
        self.description = description


#: The committed trajectory: benchmark file -> its invariant metrics.
TRAJECTORY: Dict[str, List[MetricSpec]] = {
    "BENCH_OPERATORS.json": [
        MetricSpec("cases.*.gd_iteration_speedup", "higher", 0.8, retention=0.5,
                   description="factorized GD beats (or ~matches) materialized per case"),
        MetricSpec("cases.wide_one_hot.gd_iteration_speedup", "higher", 10.0, retention=0.5,
                   description="wide one-hot case keeps its order-of-magnitude win"),
        MetricSpec("cases.*.parity_max_abs_err", "parity", 1e-10,
                   description="factorized == materialized numerically"),
    ],
    "BENCH_PIPELINE.json": [
        MetricSpec("cases.*.end_to_end_speedup", "higher", 0.8, retention=0.5,
                   description="end-to-end factorized pipeline vs materialize-then-train"),
        MetricSpec("cases.pipeline_100k.end_to_end_speedup", "higher", 5.0, retention=0.5,
                   description="the 100k-row case keeps a >=5x end-to-end win"),
        MetricSpec("cases.*.parity_max_abs_err", "parity", 1e-10),
        MetricSpec("telemetry.overhead_ratio", "lower", 1.05,
                   description="telemetry-on vs telemetry-off stays within 5%"),
        MetricSpec("telemetry.flop_parity_exact", "bool",
                   description="FLOP counters identical with telemetry on/off"),
    ],
    "BENCH_PARALLEL.json": [
        MetricSpec("parity.factors_bit_identical", "bool"),
        MetricSpec("parity.flop_counters_equal", "bool"),
        MetricSpec("parity.max_weight_diff", "parity", 1e-10,
                   description="parallel training matches sequential weights"),
        MetricSpec("scaling.speedup", "higher", 1.5, retention=0.5, requires_cores=4,
                   description="block-parallel GD speedup (needs real cores)"),
    ],
    "BENCH_RELIABILITY.json": [
        MetricSpec("checkpoint.overhead_fraction", "lower", 0.05,
                   description="checkpointing costs <=5% of training time"),
        MetricSpec("disabled.overhead_fraction", "lower", 0.01,
                   description="disabled fault sites are ~free"),
        MetricSpec("recovery.bit_identical", "bool",
                   description="resume-from-checkpoint reproduces the cold run"),
        MetricSpec("recovery.resume_speedup", "higher", 1.5, retention=0.5,
                   description="resuming beats retraining from scratch"),
    ],
    "BENCH_SERVING.json": [
        MetricSpec("incremental.speedup", "higher", 3.0, retention=0.5,
                   description="incremental factor maintenance vs full rebuild"),
        MetricSpec("incremental.max_weight_err", "parity", 1e-10),
        MetricSpec("serving.post_delta_parity", "parity", 1e-10,
                   description="predictions after deltas match a fresh rebuild"),
    ],
    "BENCH_STREAMING.json": [
        MetricSpec("budget.rss_to_dense_ratio", "lower", 0.25,
                   description="streaming build peak RSS vs dense materialization"),
        MetricSpec("parity.build_exact", "bool"),
        MetricSpec("parity.ingest_exact", "bool"),
        MetricSpec("parity.linear_max_weight_diff", "parity", 1e-10),
    ],
    "BENCH_OBSERVABILITY.json": [
        MetricSpec("overhead.ratio", "lower", 1.05,
                   description="live metrics + exporter stay within 5% of exporter-off"),
        MetricSpec("scrape.all_valid", "bool",
                   description="every concurrent scrape parsed as valid OpenMetrics"),
        MetricSpec("flight.breaker_opened", "bool",
                   description="the fault plan actually forced the breaker open"),
        MetricSpec("flight.dump_contains_request_span", "bool",
                   description="the post-mortem dump holds the failing request's span"),
    ],
}

#: Repo-relative default results directory.
DEFAULT_RESULTS = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def resolve_path(document: Any, path: str) -> List[Tuple[str, Any]]:
    """``(concrete_path, value)`` pairs for a dotted path; ``*`` expands."""
    matches: List[Tuple[str, Any]] = [("", document)]
    for segment in path.split("."):
        next_matches: List[Tuple[str, Any]] = []
        for prefix, node in matches:
            if not isinstance(node, dict):
                continue
            if segment == "*":
                for key in sorted(node):
                    next_matches.append(
                        (f"{prefix}.{key}" if prefix else key, node[key])
                    )
            elif segment in node:
                next_matches.append(
                    (f"{prefix}.{segment}" if prefix else segment, node[segment])
                )
        matches = next_matches
    return matches


def _check_bound(spec: MetricSpec, value: Any) -> Optional[str]:
    """Audit one value against the spec's absolute bound; None = ok."""
    if spec.kind == "bool":
        if value is not True:
            return f"expected True, found {value!r}"
        return None
    try:
        number = float(value)
    except (TypeError, ValueError):
        return f"expected a number, found {value!r}"
    if spec.kind == "higher" and number < spec.bound:
        return f"{number:.6g} below floor {spec.bound:g}"
    if spec.kind == "lower" and number > spec.bound:
        return f"{number:.6g} above ceiling {spec.bound:g}"
    if spec.kind == "parity" and abs(number) > spec.bound:
        return f"|{number:.6g}| above parity tolerance {spec.bound:g}"
    return None


def _check_file(
    file_name: str,
    specs: Sequence[MetricSpec],
    document: Any,
    baseline: Optional[Any],
) -> List[Dict[str, Any]]:
    findings: List[Dict[str, Any]] = []
    cores = document.get("cores", 0) if isinstance(document, dict) else 0
    for spec in specs:
        base = {
            "file": file_name,
            "metric": spec.path,
            "kind": spec.kind,
            "bound": spec.bound,
        }
        if spec.requires_cores and cores < spec.requires_cores:
            findings.append({
                **base, "status": "skip",
                "detail": f"needs >= {spec.requires_cores} cores, run had {cores}",
            })
            continue
        matches = resolve_path(document, spec.path)
        if not matches:
            findings.append({**base, "status": "fail", "detail": "metric missing"})
            continue
        for concrete, value in matches:
            finding = {**base, "metric": concrete, "value": value}
            problem = _check_bound(spec, value)
            if problem is None and baseline is not None and spec.retention is not None:
                baseline_matches = dict(resolve_path(baseline, spec.path))
                reference = baseline_matches.get(concrete)
                if reference is not None:
                    finding["baseline"] = reference
                    floor = spec.retention * float(reference)
                    if float(value) < floor:
                        problem = (
                            f"{float(value):.6g} retains less than "
                            f"{spec.retention:g} of baseline {float(reference):.6g}"
                        )
            finding["status"] = "fail" if problem else "ok"
            if problem:
                finding["detail"] = problem
            findings.append(finding)
    return findings


def audit(results_dir: Path) -> List[Dict[str, Any]]:
    """Check every trajectory file in ``results_dir`` against its bounds."""
    findings: List[Dict[str, Any]] = []
    for file_name, specs in sorted(TRAJECTORY.items()):
        path = results_dir / file_name
        if not path.exists():
            findings.append({
                "file": file_name, "metric": "-", "status": "fail",
                "detail": f"missing from {results_dir}",
            })
            continue
        document = json.loads(path.read_text())
        findings.extend(_check_file(file_name, specs, document, baseline=None))
    return findings


def compare(fresh_dir: Path, baseline_dir: Path) -> List[Dict[str, Any]]:
    """Audit fresh results and check ratio retention vs the baseline.

    Files absent from ``fresh_dir`` are skipped with a note (a partial
    re-run compares only what it produced); comparing nothing at all is
    a failure.
    """
    findings: List[Dict[str, Any]] = []
    compared = 0
    for file_name, specs in sorted(TRAJECTORY.items()):
        fresh_path = fresh_dir / file_name
        if not fresh_path.exists():
            findings.append({
                "file": file_name, "metric": "-", "status": "skip",
                "detail": "not generated by this run",
            })
            continue
        compared += 1
        document = json.loads(fresh_path.read_text())
        baseline_path = baseline_dir / file_name
        baseline = (
            json.loads(baseline_path.read_text()) if baseline_path.exists() else None
        )
        findings.extend(_check_file(file_name, specs, document, baseline))
    if compared == 0:
        findings.append({
            "file": "-", "metric": "-", "status": "fail",
            "detail": f"no trajectory files found in {fresh_dir}",
        })
    return findings


def render_text(findings: Sequence[Dict[str, Any]]) -> str:
    lines = []
    counts = {"ok": 0, "fail": 0, "skip": 0}
    for finding in findings:
        status = finding["status"]
        counts[status] += 1
        marker = {"ok": "ok  ", "fail": "FAIL", "skip": "skip"}[status]
        detail = finding.get("detail", "")
        value = finding.get("value")
        shown = ""
        if value is not None and status == "ok":
            shown = f" = {value:.6g}" if isinstance(value, float) else f" = {value!r}"
        lines.append(
            f"[{marker}] {finding['file']}: {finding['metric']}{shown}"
            + (f"  ({detail})" if detail else "")
        )
    lines.append(
        f"-- {counts['ok']} ok, {counts['fail']} failed, {counts['skip']} skipped"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.regress",
        description="Check benchmark results against the committed perf trajectory.",
    )
    parser.add_argument(
        "--results", type=Path, default=DEFAULT_RESULTS,
        help="directory to audit (default: the committed benchmarks/results/)",
    )
    parser.add_argument(
        "--fresh", type=Path, default=None,
        help="freshly generated results directory; compared against --results",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="also write findings as JSON",
    )
    options = parser.parse_args(argv)
    if options.fresh is not None:
        findings = compare(options.fresh, options.results)
    else:
        findings = audit(options.results)
    print(render_text(findings))
    if options.json is not None:
        options.json.parent.mkdir(parents=True, exist_ok=True)
        options.json.write_text(json.dumps(findings, indent=2) + "\n")
    failed = any(f["status"] == "fail" for f in findings)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""Live metrics: always-on sliding-window aggregators and SLO trackers.

The PR 6 telemetry core is *session*-scoped and offline: ``collect()``,
run a batch, read a report. This module is the complementary *live* tier
for long-running services — instruments that forget old data on their own
(sliding windows, ring buffers) so a process serving traffic for days can
answer "what is the p99 *right now*" without unbounded growth and without
a telemetry session being active at all.

Three primitives, all thread-safe and fake-clock-friendly:

* :class:`WindowedCounter` — a bucketed sliding-window sum; ``total()``
  and ``rate()`` cover exactly the trailing window, old buckets expire
  lazily on access;
* :class:`QuantileWindow` — a fixed-capacity ring buffer of the most
  recent observations; ``quantile()`` sorts the live window on demand
  (capacities are small — hundreds to a few thousand — so a scrape-time
  sort is cheaper than maintaining a sketch);
* :class:`SloTracker` — one serving session's rolling SLO view: request /
  error / shed / timeout / breaker-open windows plus a latency ring,
  snapshotting into rates, error fractions and p50/p99.

The module mirrors the :mod:`repro.telemetry` facade contract: hot call
sites guard on the module-level :data:`ENABLED` boolean (one attribute
load + branch), so switching the live tier off — the exporter-off arm of
the CI overhead guard — removes all bookkeeping from the request path.
Unlike the session tier, :data:`ENABLED` defaults to **on**: live
instruments are owned by the services that create them, cost a few locked
float updates per request, and exist precisely so they are always there
when something goes wrong.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "ENABLED",
    "QuantileWindow",
    "SloTracker",
    "WindowedCounter",
    "disable",
    "enable",
    "is_enabled",
]

#: The one branch every live-instrumented call site tests. On by default
#: (the live tier is always-on); the CI obs-guard flips it off for the
#: exporter-off overhead arm.
ENABLED = True


def enable() -> None:
    """Turn live-metric updates on (the default state)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn live-metric updates off (call sites become a single branch)."""
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    return ENABLED


class WindowedCounter:
    """A sliding-window sum over fixed time buckets.

    The window is ``n_buckets`` buckets of ``window_s / n_buckets``
    seconds each. ``add`` lands in the current bucket; buckets older than
    the window expire lazily whenever the clock advances past them, so an
    idle counter decays to zero without any background thread. The
    lifetime total is kept alongside (it is what the OpenMetrics counter
    exposition needs — counters must never go backwards).
    """

    __slots__ = ("window_s", "n_buckets", "_bucket_s", "_clock", "_lock",
                 "_buckets", "_bucket_index", "_lifetime")

    def __init__(
        self,
        window_s: float = 60.0,
        n_buckets: int = 60,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        self.window_s = float(window_s)
        self.n_buckets = int(n_buckets)
        self._bucket_s = self.window_s / self.n_buckets
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets = [0.0] * self.n_buckets
        self._bucket_index: Optional[int] = None  # absolute bucket number
        self._lifetime = 0.0

    def _advance(self) -> None:
        # Caller holds the lock. Expire every bucket the clock skipped.
        now_index = int(self._clock() / self._bucket_s)
        if self._bucket_index is None:
            self._bucket_index = now_index
            return
        skipped = now_index - self._bucket_index
        if skipped <= 0:
            return
        if skipped >= self.n_buckets:
            self._buckets = [0.0] * self.n_buckets
        else:
            for offset in range(1, skipped + 1):
                self._buckets[(self._bucket_index + offset) % self.n_buckets] = 0.0
        self._bucket_index = now_index

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._advance()
            self._buckets[self._bucket_index % self.n_buckets] += amount
            self._lifetime += amount

    def total(self) -> float:
        """The sum over the trailing window."""
        with self._lock:
            self._advance()
            return sum(self._buckets)

    def rate(self) -> float:
        """Per-second rate over the trailing window."""
        return self.total() / self.window_s

    @property
    def lifetime(self) -> float:
        """Monotonic total since construction (the exported counter)."""
        with self._lock:
            return self._lifetime


class QuantileWindow:
    """Quantiles over the most recent ``capacity`` observations.

    A plain ring buffer: each observation overwrites the oldest once the
    window is full, so the estimate always describes recent behavior.
    Quantile reads copy and sort the live window under the lock — at the
    capacities used here (<= a few thousand floats) that is microseconds,
    and it guarantees a scrape never sees a torn window.
    """

    __slots__ = ("capacity", "_lock", "_ring", "_next", "_count", "_total")

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: List[float] = [0.0] * self.capacity
        self._next = 0
        self._count = 0  # lifetime observation count
        self._total = 0.0  # lifetime sum (the exported summary _sum)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._ring[self._next] = value
            self._next = (self._next + 1) % self.capacity
            self._count += 1
            self._total += value

    def _window(self) -> List[float]:
        # Caller holds the lock.
        if self._count >= self.capacity:
            return list(self._ring)
        return self._ring[: self._count]

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the window; 0.0 while empty."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            window = self._window()
        if not window:
            return 0.0
        window.sort()
        # Nearest-rank on the sorted window: robust, monotone in q.
        rank = min(len(window), max(1, math.ceil(q * len(window))))
        return window[rank - 1]

    def snapshot(self) -> Dict[str, float]:
        """Count/sum plus the standard latency quantiles, one lock hold."""
        with self._lock:
            window = self._window()
            count = self._count
            total = self._total
        if not window:
            return {"count": count, "sum": total, "window": 0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
        window.sort()
        last = len(window) - 1

        def at(q: float) -> float:
            return window[min(last, max(0, int(round(q * last))))]

        return {
            "count": count,
            "sum": total,
            "window": len(window),
            "p50": at(0.50),
            "p90": at(0.90),
            "p99": at(0.99),
            "max": window[-1],
        }


#: Request outcomes a :class:`SloTracker` distinguishes. ``ok`` is the
#: success path; everything else is a failure mode with its own rate.
OUTCOMES = ("ok", "error", "shed", "timeout", "breaker_open", "rejected")


class SloTracker:
    """Rolling SLO view of one serving session.

    One :class:`WindowedCounter` per request outcome plus a latency
    :class:`QuantileWindow` over completed requests. ``record`` is the
    single hot-path entry: outcome classification plus (for completed
    requests) one latency observation.
    """

    def __init__(
        self,
        name: str,
        window_s: float = 60.0,
        latency_capacity: int = 2048,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self.window_s = float(window_s)
        self._outcomes: Dict[str, WindowedCounter] = {
            outcome: WindowedCounter(window_s=window_s, clock=clock)
            for outcome in OUTCOMES
        }
        self.latency = QuantileWindow(capacity=latency_capacity)

    def record(self, outcome: str, latency_s: Optional[float] = None) -> None:
        counter = self._outcomes.get(outcome)
        if counter is None:
            raise ValueError(
                f"unknown outcome {outcome!r}; expected one of {OUTCOMES}"
            )
        counter.add(1.0)
        if latency_s is not None:
            self.latency.observe(float(latency_s))

    def snapshot(self) -> Dict[str, object]:
        """The session's SLO view: windowed rates, failure fractions and
        latency quantiles. Each instrument snapshots atomically; the view
        as a whole is a consistent-enough composite for dashboards (no
        instrument is ever torn mid-value)."""
        totals = {o: c.total() for o, c in self._outcomes.items()}
        lifetime = {o: c.lifetime for o, c in self._outcomes.items()}
        n_window = sum(totals.values())
        latency = self.latency.snapshot()

        def fraction(outcome: str) -> float:
            return totals[outcome] / n_window if n_window else 0.0

        return {
            "session": self.name,
            "window_s": self.window_s,
            "window_requests": n_window,
            "request_rate": n_window / self.window_s,
            "error_rate": fraction("error"),
            "shed_rate": fraction("shed"),
            "timeout_rate": fraction("timeout"),
            "breaker_open_rate": fraction("breaker_open"),
            "rejected_rate": fraction("rejected"),
            "latency": latency,
            "lifetime": lifetime,
        }

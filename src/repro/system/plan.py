"""Execution plans, model specifications and training results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.backends import Backend
from repro.costmodel.amalur_cost import CostBreakdown
from repro.costmodel.decision import Decision
from repro.matrices.builder import IntegratedDataset


@dataclass
class ModelSpec:
    """What the user wants trained (the "ML model" input of Figure 3)."""

    task: str = "classification"  # classification | regression | clustering | nmf
    learning_rate: float = 0.05
    n_iterations: int = 200
    l2_penalty: float = 0.0
    n_clusters: int = 3
    n_components: int = 2
    hyperparameters: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        return f"{self.task} (lr={self.learning_rate}, iters={self.n_iterations})"


@dataclass
class PlanStep:
    """One step of an execution plan, for explainability/logging."""

    description: str
    target: str = ""


@dataclass
class ExecutionPlan:
    """The optimizer's output: a strategy plus the steps to run it.

    ``backend`` is the compute backend the factorized operators should run
    on (``None`` keeps the dense default); the optimizer fills it from the
    same density statistics the cost model used.
    """

    strategy: Decision
    dataset: IntegratedDataset
    model: ModelSpec
    steps: List[PlanStep] = field(default_factory=list)
    cost_breakdown: Optional[CostBreakdown] = None
    explanation: str = ""
    backend: Optional[Backend] = None

    def describe(self) -> str:
        lines = [f"strategy: {self.strategy.value}", f"model: {self.model.describe()}"]
        if self.backend is not None:
            lines.append(f"backend: {self.backend.name}")
        if self.explanation:
            lines.append(f"reason: {self.explanation}")
        for index, step in enumerate(self.steps, start=1):
            suffix = f" [{step.target}]" if step.target else ""
            lines.append(f"  {index}. {step.description}{suffix}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ModelHandle:
    """An explicit reference to a trained, catalog-registered model.

    Returned by :meth:`repro.system.Amalur.train` (on
    :attr:`TrainingResult.handle`) so callers address models by handle
    instead of guessing the facade's internal ``model_{counter}`` naming.
    ``auto_named`` records that the name came from the counter default —
    :meth:`repro.metadata.MetadataCatalog.model` deprecates string lookups
    of such names.
    """

    name: str
    task: str = ""
    dataset: str = ""
    auto_named: bool = False

    def __str__(self) -> str:
        return self.name


@dataclass
class TrainingResult:
    """The executor's output: the trained model plus execution evidence."""

    plan: ExecutionPlan
    model: object
    metrics: Dict[str, float] = field(default_factory=dict)
    predictions: Optional[np.ndarray] = None
    bytes_transferred: int = 0
    n_messages: int = 0
    handle: Optional[ModelHandle] = None

    @property
    def strategy(self) -> Decision:
        return self.plan.strategy

"""The Amalur system facade (paper §II, Figure 3).

Wires the other packages together: the metadata catalog and discovery, the
matrix builder, the optimizer that chooses factorization, materialization
or federated learning, and the executor that trains the requested model
under the chosen strategy while accounting silo-boundary traffic.

The public API is request-based (:mod:`repro.system.requests`): an
:class:`IntegrationConfig` configures both batch :meth:`Amalur.integrate`
calls and long-lived serving sessions, :class:`TrainRequest` /
:class:`PredictRequest` drive training and prediction, and trained models
are addressed by :class:`ModelHandle`.
"""

from repro.system.plan import (
    ExecutionPlan,
    ModelHandle,
    ModelSpec,
    PlanStep,
    TrainingResult,
)
from repro.system.requests import (
    DeltaBatch,
    IntegrationConfig,
    PredictRequest,
    ServiceResult,
    TrainRequest,
)
from repro.system.optimizer import Optimizer
from repro.system.executor import Executor
from repro.system.amalur import Amalur

__all__ = [
    "ExecutionPlan",
    "PlanStep",
    "ModelSpec",
    "ModelHandle",
    "TrainingResult",
    "IntegrationConfig",
    "TrainRequest",
    "PredictRequest",
    "DeltaBatch",
    "ServiceResult",
    "Optimizer",
    "Executor",
    "Amalur",
]

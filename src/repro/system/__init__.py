"""The Amalur system facade (paper §II, Figure 3).

Wires the other packages together: the metadata catalog and discovery, the
matrix builder, the optimizer that chooses factorization, materialization
or federated learning, and the executor that trains the requested model
under the chosen strategy while accounting silo-boundary traffic.
"""

from repro.system.plan import ExecutionPlan, PlanStep, ModelSpec, TrainingResult
from repro.system.optimizer import Optimizer
from repro.system.executor import Executor
from repro.system.amalur import Amalur

__all__ = [
    "ExecutionPlan",
    "PlanStep",
    "ModelSpec",
    "TrainingResult",
    "Optimizer",
    "Executor",
    "Amalur",
]

"""Typed request/config objects — the public contract of the Amalur API.

The facade (:class:`repro.system.Amalur`) and the online serving layer
(:mod:`repro.serving`) share these objects: a batch ``integrate`` call and
a long-lived session are configured by the same :class:`IntegrationConfig`,
and the same :class:`TrainRequest` / :class:`PredictRequest` drive both the
one-shot executor path and the worker pool of
:class:`repro.serving.AmalurService`. The legacy positional facade
signatures remain as thin deprecation shims that build these objects.

Everything here is plain data: no table handles, no numpy state beyond
request payloads, importable without pulling in the execution layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends import BackendSpec
from repro.exceptions import ServiceError
from repro.metadata.mappings import ScenarioType
from repro.system.plan import ExecutionPlan, ModelHandle, ModelSpec


@dataclass
class IntegrationConfig:
    """What to integrate: the two sources, the mediated schema, the scenario.

    The canonical input of :meth:`repro.system.Amalur.integrate` and
    :meth:`repro.system.Amalur.open_session`.
    """

    base: str
    other: str
    target_columns: List[str]
    scenario: ScenarioType
    label_column: Optional[str] = None
    name: str = "T"
    backend: BackendSpec = None

    def __post_init__(self) -> None:
        self.target_columns = list(self.target_columns)
        if not self.target_columns:
            raise ServiceError("integration needs at least one target column")


@dataclass
class TrainRequest:
    """A training request against an integrated dataset.

    ``model_name`` overrides the facade's ``model_{counter}`` default;
    ``warm_start`` seeds gradient-descent models from the weights cached
    under the same handle (serving sessions use this after delta batches).
    """

    model: ModelSpec = field(default_factory=ModelSpec)
    dataset: Optional[object] = None  # IntegratedDataset; None = session-resident
    plan: Optional[ExecutionPlan] = None
    model_name: Optional[str] = None
    warm_start: bool = False
    timeout: Optional[float] = None


@dataclass
class PredictRequest:
    """A prediction request against a trained model.

    ``row_range`` restricts the prediction to target rows ``[start, stop)``
    (served through the zero-copy blocked view — the row-cap friendly
    path); ``None`` predicts every target row. ``version`` optionally pins
    the dataset version the caller prepared against: a mismatch raises
    :class:`repro.exceptions.StaleDatasetError` instead of silently serving
    rows from a newer snapshot.
    """

    model: Union[ModelHandle, str, None] = None
    row_range: Optional[Tuple[int, int]] = None
    version: Optional[int] = None
    timeout: Optional[float] = None

    @property
    def model_name(self) -> Optional[str]:
        if self.model is None:
            return None
        return self.model.name if isinstance(self.model, ModelHandle) else str(self.model)


@dataclass
class DeltaBatch:
    """One batch of mutations against a *source* table of a session.

    ``kind``:

    * ``"append"`` — ``rows`` maps column name → sequence of new values
      (missing columns become NULL);
    * ``"update"`` — ``row_indices`` names existing source rows, ``rows``
      carries the replacement values per column;
    * ``"delete"`` — ``row_indices`` names the source rows to drop.
    """

    table: str
    kind: str = "append"
    rows: Dict[str, Sequence] = field(default_factory=dict)
    row_indices: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("append", "update", "delete"):
            raise ServiceError(f"unknown delta kind {self.kind!r}")
        if self.kind == "append" and not self.rows:
            raise ServiceError("append delta carries no rows")
        if self.kind in ("update", "delete") and self.row_indices is None:
            raise ServiceError(f"{self.kind} delta needs row_indices")

    @property
    def n_rows(self) -> int:
        if self.kind == "append":
            return max((len(v) for v in self.rows.values()), default=0)
        return len(self.row_indices) if self.row_indices is not None else 0


@dataclass
class ServiceResult:
    """The envelope every serving request resolves to.

    ``value`` is request-kind specific: a predictions array for predicts,
    a :class:`~repro.serving.session.SessionModel` for trains, a delta
    summary dict for delta batches.
    """

    request_id: int
    kind: str
    value: object = None
    latency_s: float = 0.0
    version: int = 0
    handle: Optional[ModelHandle] = None

    @property
    def predictions(self) -> Optional[np.ndarray]:
        return self.value if isinstance(self.value, np.ndarray) else None

"""The Amalur facade: end-to-end ML over data silos (paper Figure 3)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import telemetry as _telemetry
from repro.costmodel.amalur_cost import AmalurCostModel
from repro.matrices.builder import IntegratedDataset, integrate_tables
from repro.metadata.catalog import MetadataCatalog, ModelMetadata
from repro.metadata.discovery import AugmentationCandidate, DataDiscovery
from repro.metadata.entity_resolution import resolve_entities
from repro.metadata.mappings import ScenarioType, build_scenario_mapping
from repro.metadata.schema_matching import HybridMatcher, SchemaMatcher, match_schemas
from repro.relational.table import Table
from repro.silos.network import SimulatedNetwork
from repro.silos.orchestrator import Orchestrator
from repro.silos.silo import DataSilo, PrivacyLevel
from repro.system.executor import Executor
from repro.system.optimizer import Optimizer
from repro.system.plan import ExecutionPlan, ModelSpec, TrainingResult


class Amalur:
    """An ML-oriented data integration system over data silos.

    Typical workflow (mirroring Figure 3)::

        amalur = Amalur()
        amalur.add_silo("er", privacy=PrivacyLevel.OPEN)
        amalur.add_table("er", s1)
        amalur.add_silo("pulmonary")
        amalur.add_table("pulmonary", s2)

        candidates = amalur.discover(base="S1", label_column="m")
        dataset = amalur.integrate("S1", "S2", target_columns=["m", "a", "hr", "o"],
                                   scenario=ScenarioType.FULL_OUTER_JOIN, label_column="m")
        plan = amalur.plan(dataset, ModelSpec(task="classification"))
        result = amalur.train(dataset, ModelSpec(task="classification"))
    """

    def __init__(
        self,
        matcher: Optional[SchemaMatcher] = None,
        cost_model: Optional[AmalurCostModel] = None,
        network: Optional[SimulatedNetwork] = None,
    ):
        self.catalog = MetadataCatalog()
        self.orchestrator = Orchestrator(network=network)
        self.matcher = matcher or HybridMatcher()
        self.optimizer = Optimizer(orchestrator=self.orchestrator, cost_model=cost_model)
        self.executor = Executor(orchestrator=self.orchestrator)
        self._model_counter = 0

    # -- silo & catalog management ------------------------------------------------------
    def add_silo(self, name: str, privacy: PrivacyLevel = PrivacyLevel.OPEN) -> DataSilo:
        silo = DataSilo(name, privacy=privacy)
        self.orchestrator.register_silo(silo)
        return silo

    def add_table(self, silo_name: str, table: Table) -> None:
        silo = self.orchestrator.silo(silo_name)
        silo.add_table(table)
        self.orchestrator.register_silo(silo)  # refresh the table→silo index
        self.catalog.register_source(table, silo=silo_name)

    @property
    def tables(self) -> List[str]:
        return self.catalog.source_names

    # -- discovery and integration --------------------------------------------------------
    def discover(
        self, base: str, label_column: str, top_k: Optional[int] = None
    ) -> List[AugmentationCandidate]:
        """Rank catalog tables as feature-augmentation candidates for ``base``."""
        discovery = DataDiscovery(self.catalog, matcher=self.matcher)
        return discovery.discover(self.catalog.table(base), label_column, top_k=top_k)

    def integrate(
        self,
        base_name: str,
        other_name: str,
        target_columns: Sequence[str],
        scenario: ScenarioType,
        label_column: Optional[str] = None,
    ) -> IntegratedDataset:
        """Match, resolve and build the factorized representation of two sources.

        Schema matching and entity resolution run automatically and their
        outputs (the DI metadata) are recorded in the catalog together with
        the generated schema mapping.
        """
        with _telemetry.span(
            "amalur.integrate", base=base_name, other=other_name,
            scenario=scenario.value,
        ):
            base = self.catalog.table(base_name)
            other = self.catalog.table(other_name)
            column_matches = match_schemas(base, other, matcher=self.matcher)
            self.catalog.record_column_matches(base_name, other_name, column_matches)
            row_matches = resolve_entities(base, other, column_matches=column_matches)
            self.catalog.record_row_matches(base_name, other_name, row_matches)
            mapping = build_scenario_mapping(
                base, other, column_matches, target_columns, scenario
            )
            self.catalog.record_schema_mapping(base_name, other_name, mapping)
            return integrate_tables(
                base=base,
                other=other,
                column_matches=column_matches,
                row_matches=row_matches,
                target_columns=target_columns,
                scenario=scenario,
                label_column=label_column,
            )

    # -- planning and training --------------------------------------------------------------
    def plan(self, dataset: IntegratedDataset, model: ModelSpec) -> ExecutionPlan:
        return self.optimizer.plan(dataset, model)

    def train(
        self,
        dataset: IntegratedDataset,
        model: ModelSpec,
        plan: Optional[ExecutionPlan] = None,
    ) -> TrainingResult:
        """Plan (unless given) and execute training, registering the model."""
        with _telemetry.span("amalur.train", task=model.task, dataset=dataset.name):
            plan = plan or self.optimizer.plan(dataset, model)
            result = self.executor.execute(plan)
        self._model_counter += 1
        metadata = ModelMetadata(
            name=f"model_{self._model_counter}",
            model_type=model.task,
            hyperparameters={
                "learning_rate": model.learning_rate,
                "n_iterations": model.n_iterations,
                "l2_penalty": model.l2_penalty,
            },
            metrics=dict(result.metrics),
            training_datasets=[factor.name for factor in dataset.factors],
        )
        self.catalog.register_model(metadata)
        return result

    # -- observability ----------------------------------------------------------------------
    @staticmethod
    def run_report():
        """The active telemetry session's run report (``None`` when disabled).

        Enable collection with :func:`repro.telemetry.enable` (or the
        :func:`repro.telemetry.collect` context manager) before running the
        pipeline, then call this to obtain the structured
        :class:`~repro.telemetry.report.RunReport` — spans, counters,
        histograms and memory probes.
        """
        return _telemetry.run_report()

    # -- traffic accounting ---------------------------------------------------------------
    @property
    def network(self) -> SimulatedNetwork:
        return self.orchestrator.network

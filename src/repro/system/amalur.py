"""The Amalur facade: end-to-end ML over data silos (paper Figure 3).

The public API is request-based: :class:`IntegrationConfig` describes what
to integrate, :class:`TrainRequest` / :class:`PredictRequest` describe what
to run, and trained models are addressed through :class:`ModelHandle`\\ s.
The legacy positional signatures (``integrate("S1", "S2", ...)``,
``train(dataset, spec)``) remain as thin deprecation shims that build the
request objects, so existing call sites keep working.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import telemetry as _telemetry
from repro.costmodel.amalur_cost import AmalurCostModel
from repro.exceptions import ServiceError
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.matrices.builder import IntegratedDataset, integrate_tables
from repro.metadata.catalog import MetadataCatalog, ModelMetadata
from repro.metadata.discovery import AugmentationCandidate, DataDiscovery
from repro.metadata.entity_resolution import resolve_entities
from repro.metadata.mappings import ScenarioType, build_scenario_mapping
from repro.metadata.schema_matching import HybridMatcher, SchemaMatcher, match_schemas
from repro.relational.table import Table
from repro.silos.network import SimulatedNetwork
from repro.silos.orchestrator import Orchestrator
from repro.silos.silo import DataSilo, PrivacyLevel
from repro.system.executor import Executor
from repro.system.optimizer import Optimizer
from repro.system.plan import ExecutionPlan, ModelHandle, ModelSpec, TrainingResult
from repro.system.requests import (
    IntegrationConfig,
    PredictRequest,
    TrainRequest,
)


class Amalur:
    """An ML-oriented data integration system over data silos.

    Typical workflow (mirroring Figure 3)::

        amalur = Amalur()
        amalur.add_silo("er", privacy=PrivacyLevel.OPEN)
        amalur.add_table("er", s1)
        amalur.add_silo("pulmonary")
        amalur.add_table("pulmonary", s2)

        candidates = amalur.discover(base="S1", label_column="m")
        config = IntegrationConfig(base="S1", other="S2",
                                   target_columns=["m", "a", "hr", "o"],
                                   scenario=ScenarioType.FULL_OUTER_JOIN,
                                   label_column="m")
        dataset = amalur.integrate(config)
        result = amalur.train(TrainRequest(model=ModelSpec(task="classification"),
                                           dataset=dataset))
        scores = amalur.predict(dataset, PredictRequest(model=result.handle))

    For online workloads, :meth:`open_session` keeps the integrated dataset
    resident under incremental delta maintenance and :meth:`serve` fronts
    sessions with a bounded worker pool (see :mod:`repro.serving`).
    """

    def __init__(
        self,
        matcher: Optional[SchemaMatcher] = None,
        cost_model: Optional[AmalurCostModel] = None,
        network: Optional[SimulatedNetwork] = None,
    ):
        self.catalog = MetadataCatalog()
        self.orchestrator = Orchestrator(network=network)
        self.matcher = matcher or HybridMatcher()
        self.optimizer = Optimizer(orchestrator=self.orchestrator, cost_model=cost_model)
        self.executor = Executor(orchestrator=self.orchestrator)
        self._model_counter = 0
        self._models: Dict[str, TrainingResult] = {}
        self._last_model_name: Optional[str] = None

    # -- silo & catalog management ------------------------------------------------------
    def add_silo(self, name: str, privacy: PrivacyLevel = PrivacyLevel.OPEN) -> DataSilo:
        silo = DataSilo(name, privacy=privacy)
        self.orchestrator.register_silo(silo)
        return silo

    def add_table(self, silo_name: str, table: Table) -> None:
        silo = self.orchestrator.silo(silo_name)
        silo.add_table(table)
        self.orchestrator.register_table(silo_name, table.name)
        self.catalog.register_source(table, silo=silo_name)

    @property
    def tables(self) -> List[str]:
        return self.catalog.source_names

    # -- discovery and integration --------------------------------------------------------
    def discover(
        self, base: str, label_column: str, top_k: Optional[int] = None
    ) -> List[AugmentationCandidate]:
        """Rank catalog tables as feature-augmentation candidates for ``base``."""
        discovery = DataDiscovery(self.catalog, matcher=self.matcher)
        return discovery.discover(self.catalog.table(base), label_column, top_k=top_k)

    def integrate(
        self,
        config: Union[IntegrationConfig, str],
        other_name: Optional[str] = None,
        target_columns: Optional[Sequence[str]] = None,
        scenario: Optional[ScenarioType] = None,
        label_column: Optional[str] = None,
    ) -> IntegratedDataset:
        """Match, resolve and build the factorized representation of two sources.

        The canonical form takes one :class:`IntegrationConfig`. The legacy
        positional form ``integrate(base, other, target_columns, scenario,
        label_column)`` still works but is deprecated.

        Schema matching and entity resolution run automatically and their
        outputs (the DI metadata) are recorded in the catalog together with
        the generated schema mapping.
        """
        config = self._coerce_integration_config(
            config, other_name, target_columns, scenario, label_column
        )
        with _telemetry.span(
            "amalur.integrate", base=config.base, other=config.other,
            scenario=config.scenario.value,
        ):
            base, other, column_matches, row_matches = self._resolve_sources(config)
            return integrate_tables(
                base=base,
                other=other,
                column_matches=column_matches,
                row_matches=row_matches,
                target_columns=config.target_columns,
                scenario=config.scenario,
                label_column=config.label_column,
                name=config.name,
                backend=config.backend,
            )

    def open_session(self, config: IntegrationConfig, **session_options):
        """A long-lived :class:`~repro.serving.DatasetSession` over catalog tables.

        The session keeps the integrated dataset resident (compiled operator
        plans, seeded Gram cache) and folds :class:`DeltaBatch` mutations in
        incrementally; see :mod:`repro.serving`. ``session_options`` pass
        through (``staleness_threshold``, ``auto_rebuild``).
        """
        from repro.serving.session import DatasetSession

        base = self.catalog.table(config.base)
        other = self.catalog.table(config.other)
        column_matches = match_schemas(base, other, matcher=self.matcher)
        self.catalog.record_column_matches(config.base, config.other, column_matches)
        mapping = build_scenario_mapping(
            base, other, column_matches, config.target_columns, config.scenario,
            target_name=config.name,
        )
        self.catalog.record_schema_mapping(config.base, config.other, mapping)
        return DatasetSession(
            base, other, config, column_matches=column_matches, **session_options
        )

    def serve(
        self,
        n_workers: int = 4,
        max_queue: int = 64,
        default_timeout: Optional[float] = None,
        max_rows_per_request: Optional[int] = None,
    ):
        """A fresh :class:`~repro.serving.AmalurService` worker pool."""
        from repro.serving.service import AmalurService

        return AmalurService(
            n_workers=n_workers,
            max_queue=max_queue,
            default_timeout=default_timeout,
            max_rows_per_request=max_rows_per_request,
        )

    # -- planning and training --------------------------------------------------------------
    def plan(self, dataset: IntegratedDataset, model: ModelSpec) -> ExecutionPlan:
        return self.optimizer.plan(dataset, model)

    def train(
        self,
        request: Union[TrainRequest, IntegratedDataset],
        model: Optional[ModelSpec] = None,
        plan: Optional[ExecutionPlan] = None,
    ) -> TrainingResult:
        """Plan (unless given) and execute training, registering the model.

        The canonical form takes one :class:`TrainRequest` (carrying the
        dataset, the model spec, an optional pre-built plan and an explicit
        ``model_name``). The legacy positional form ``train(dataset, spec,
        plan)`` still works but is deprecated; it registers the model under
        the implicit ``model_{counter}`` name.
        """
        request = self._coerce_train_request(request, model, plan)
        dataset = request.dataset
        if dataset is None:
            raise ServiceError(
                "TrainRequest.dataset is required for facade training "
                "(session-resident training goes through DatasetSession.train)"
            )
        spec = request.model
        with _telemetry.span("amalur.train", task=spec.task, dataset=dataset.name):
            execution_plan = request.plan or self.optimizer.plan(dataset, spec)
            warm_from = None
            if request.warm_start and request.model_name in self._models:
                warm_from = self._models[request.model_name].model
            result = self.executor.execute(execution_plan, warm_start_from=warm_from)
        auto_named = request.model_name is None
        if auto_named:
            self._model_counter += 1
            name = f"model_{self._model_counter}"
        else:
            name = request.model_name
        handle = ModelHandle(
            name=name, task=spec.task, dataset=dataset.name, auto_named=auto_named
        )
        result.handle = handle
        metadata = ModelMetadata(
            name=name,
            model_type=spec.task,
            hyperparameters={
                "learning_rate": spec.learning_rate,
                "n_iterations": spec.n_iterations,
                "l2_penalty": spec.l2_penalty,
            },
            metrics=dict(result.metrics),
            training_datasets=[factor.name for factor in dataset.factors],
        )
        self.catalog.register_model(metadata, auto_named=auto_named)
        self._models[name] = result
        self._last_model_name = name
        return result

    def predict(
        self,
        dataset: IntegratedDataset,
        request: Optional[PredictRequest] = None,
    ) -> np.ndarray:
        """Predict with a previously trained model over a dataset's target rows.

        ``request.model`` names the model (a :class:`ModelHandle` or string);
        ``None`` uses the most recently trained one. ``row_range`` restricts
        the output to target rows ``[start, stop)``.
        """
        request = request or PredictRequest()
        name = request.model_name or self._last_model_name
        if name is None or name not in self._models:
            raise ServiceError(
                f"no trained model named {name!r}; trained: {sorted(self._models)}"
            )
        trained = self._models[name].model
        if trained is None or not hasattr(trained, "predict"):
            raise ServiceError(
                f"model {name!r} does not support prediction"
            )
        matrix = AmalurMatrix(dataset)
        with _telemetry.span("amalur.predict", model=name, dataset=dataset.name):
            scores = np.asarray(trained.predict(matrix.feature_matrix_view()))
            if request.row_range is not None:
                start, stop = request.row_range
                if not (0 <= start <= stop <= dataset.n_target_rows):
                    raise ServiceError(
                        f"row range [{start}, {stop}) outside target rows "
                        f"[0, {dataset.n_target_rows})"
                    )
                scores = scores[int(start):int(stop)]
        return scores

    def model_result(self, handle: Union[ModelHandle, str]) -> TrainingResult:
        """The :class:`TrainingResult` registered under a handle or name."""
        name = handle.name if isinstance(handle, ModelHandle) else str(handle)
        if name not in self._models:
            raise ServiceError(
                f"no trained model named {name!r}; trained: {sorted(self._models)}"
            )
        return self._models[name]

    # -- observability ----------------------------------------------------------------------
    @staticmethod
    def run_report():
        """The active telemetry session's run report (``None`` when disabled).

        Enable collection with :func:`repro.telemetry.enable` (or the
        :func:`repro.telemetry.collect` context manager) before running the
        pipeline, then call this to obtain the structured
        :class:`~repro.telemetry.report.RunReport` — spans, counters,
        histograms and memory probes.
        """
        return _telemetry.run_report()

    # -- traffic accounting ---------------------------------------------------------------
    @property
    def network(self) -> SimulatedNetwork:
        return self.orchestrator.network

    # -- legacy-signature shims -------------------------------------------------------------
    def _coerce_integration_config(
        self, config, other_name, target_columns, scenario, label_column
    ) -> IntegrationConfig:
        if isinstance(config, IntegrationConfig):
            if other_name is not None or target_columns is not None:
                raise ServiceError(
                    "pass either an IntegrationConfig or the legacy positional "
                    "arguments, not both"
                )
            return config
        warnings.warn(
            "Amalur.integrate(base, other, target_columns, scenario, ...) is "
            "deprecated; pass an IntegrationConfig instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if other_name is None or target_columns is None or scenario is None:
            raise ServiceError(
                "legacy integrate() needs base, other, target_columns and scenario"
            )
        return IntegrationConfig(
            base=str(config),
            other=other_name,
            target_columns=list(target_columns),
            scenario=scenario,
            label_column=label_column,
        )

    def _coerce_train_request(self, request, model, plan) -> TrainRequest:
        if isinstance(request, TrainRequest):
            if model is not None or plan is not None:
                raise ServiceError(
                    "pass either a TrainRequest or the legacy positional "
                    "arguments, not both"
                )
            return request
        warnings.warn(
            "Amalur.train(dataset, model, plan) is deprecated; pass a "
            "TrainRequest instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if model is None:
            raise ServiceError("legacy train() needs a ModelSpec")
        return TrainRequest(model=model, dataset=request, plan=plan)

    def _resolve_sources(self, config: IntegrationConfig):
        """Catalog lookup + DI metadata derivation and recording."""
        base = self.catalog.table(config.base)
        other = self.catalog.table(config.other)
        column_matches = match_schemas(base, other, matcher=self.matcher)
        self.catalog.record_column_matches(config.base, config.other, column_matches)
        row_matches = resolve_entities(base, other, column_matches=column_matches)
        self.catalog.record_row_matches(config.base, config.other, row_matches)
        mapping = build_scenario_mapping(
            base, other, column_matches, config.target_columns, config.scenario,
            target_name=config.name,
        )
        self.catalog.record_schema_mapping(config.base, config.other, mapping)
        return base, other, column_matches, row_matches

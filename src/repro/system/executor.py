"""Execute an :class:`repro.system.plan.ExecutionPlan` and train the model."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry as _telemetry
from repro.costmodel.decision import Decision
from repro.exceptions import PlanError
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.federated.horizontal import FederatedAveraging
from repro.federated.party import Party
from repro.federated.vertical_lr import VerticalFederatedLinearRegression
from repro.learning.base import DenseMatrix
from repro.learning.gaussian_nmf import GaussianNMF
from repro.learning.kmeans import KMeans
from repro.learning.linear_regression import LinearRegression
from repro.learning.logistic_regression import LogisticRegression
from repro.learning.metrics import accuracy_score, mean_squared_error, r2_score
from repro.matrices.builder import IntegratedDataset
from repro.metadata.mappings import ScenarioType
from repro.silos.orchestrator import Orchestrator
from repro.system.plan import ExecutionPlan, ModelSpec, TrainingResult


class Executor:
    """Runs plans produced by :class:`repro.system.optimizer.Optimizer`."""

    def __init__(self, orchestrator: Optional[Orchestrator] = None):
        self.orchestrator = orchestrator or Orchestrator()

    def execute(
        self, plan: ExecutionPlan, warm_start_from: Optional[object] = None
    ) -> TrainingResult:
        """Run a plan; ``warm_start_from`` seeds GD weights from a prior model."""
        with _telemetry.span(
            "executor.execute", strategy=plan.strategy.value, task=plan.model.task
        ):
            baseline_bytes = self.orchestrator.network.total_bytes
            baseline_messages = self.orchestrator.network.n_messages

            if plan.strategy is Decision.FEDERATE:
                result = self._execute_federated(plan)
            else:
                result = self._execute_central(plan, warm_start_from)

            result.bytes_transferred = self.orchestrator.network.total_bytes - baseline_bytes
            result.n_messages = self.orchestrator.network.n_messages - baseline_messages
            return result

    # -- centralized strategies (materialize / factorize) ---------------------------------
    def _execute_central(
        self, plan: ExecutionPlan, warm_start_from: Optional[object] = None
    ) -> TrainingResult:
        dataset = plan.dataset
        model_spec = plan.model
        if plan.strategy is Decision.MATERIALIZE:
            target = self.orchestrator.materialize_target(dataset)
            features, labels = self._split_features_labels(dataset, target)
            operand = DenseMatrix(features)
        elif plan.strategy is Decision.FACTORIZE:
            matrix = AmalurMatrix(dataset, backend=plan.backend)
            labels = matrix.labels() if dataset.label_column else None
            operand = matrix.feature_matrix_view()
            # Account the per-iteration silo traffic of pushdown: the operand
            # (weights) goes out, the partial results come back, once per
            # training iteration and per source.
            self._account_factorized_traffic(dataset, model_spec)
        else:  # pragma: no cover - defensive
            raise PlanError(f"unsupported central strategy {plan.strategy!r}")

        model, metrics, predictions = self._train_central(
            operand, labels, model_spec, warm_start_from
        )
        return TrainingResult(plan=plan, model=model, metrics=metrics, predictions=predictions)

    def _account_factorized_traffic(
        self, dataset: IntegratedDataset, model_spec: ModelSpec
    ) -> None:
        operand_bytes = np.zeros(len(dataset.feature_columns))
        partial_bytes = np.zeros(dataset.n_target_rows)
        for _ in range(max(model_spec.n_iterations, 1)):
            for factor in dataset.factors:
                silo_name = factor.name
                self.orchestrator.network.send(
                    Orchestrator.ORCHESTRATOR, silo_name, "weights", operand_bytes
                )
                self.orchestrator.network.send(
                    silo_name, Orchestrator.ORCHESTRATOR, "partial_result", partial_bytes
                )

    def _split_features_labels(
        self, dataset: IntegratedDataset, target: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        if dataset.label_column is None:
            return target, None
        label_index = dataset.target_columns.index(dataset.label_column)
        feature_indices = [i for i in range(target.shape[1]) if i != label_index]
        return target[:, feature_indices], target[:, label_index]

    def _train_central(
        self, operand, labels, model_spec: ModelSpec, warm_start_from=None
    ):
        task = model_spec.task
        if task == "classification":
            if labels is None:
                raise PlanError("classification requires a label column")
            model = LogisticRegression(
                learning_rate=model_spec.learning_rate,
                n_iterations=model_spec.n_iterations,
                l2_penalty=model_spec.l2_penalty,
                warm_start=warm_start_from is not None,
            )
            self._seed_weights(model, warm_start_from)
            model = self._fit_wrapped(model, operand, labels)
            predictions = model.predict(operand)
            metrics = {
                "accuracy": accuracy_score(labels, predictions),
                "log_loss": model.loss_history_[-1] if model.loss_history_ else float("nan"),
            }
            return model, metrics, predictions
        if task == "regression":
            if labels is None:
                raise PlanError("regression requires a label column")
            model = LinearRegression(
                solver="gd",
                learning_rate=model_spec.learning_rate,
                n_iterations=model_spec.n_iterations,
                l2_penalty=model_spec.l2_penalty,
                warm_start=warm_start_from is not None,
            )
            self._seed_weights(model, warm_start_from)
            model = self._fit_wrapped(model, operand, labels)
            predictions = model.predict(operand)
            metrics = {
                "mse": mean_squared_error(labels, predictions),
                "r2": r2_score(labels, predictions),
            }
            return model, metrics, predictions
        if task == "clustering":
            model = KMeans(
                n_clusters=model_spec.n_clusters, n_iterations=model_spec.n_iterations
            ).fit(operand)
            return model, {"inertia": model.inertia_}, model.labels_
        if task == "nmf":
            model = GaussianNMF(
                n_components=model_spec.n_components, n_iterations=model_spec.n_iterations
            ).fit(operand)
            return model, {"reconstruction_error": model.reconstruction_error_}, None
        raise PlanError(f"unknown task {task!r}")

    @staticmethod
    def _seed_weights(model, warm_start_from) -> None:
        """Copy weights from a compatible previous model of the same class."""
        if warm_start_from is None or not isinstance(warm_start_from, type(model)):
            return
        previous_coef = getattr(warm_start_from, "coef_", None)
        if previous_coef is not None:
            model.coef_ = np.array(previous_coef)
            model.intercept_ = float(getattr(warm_start_from, "intercept_", 0.0))

    @staticmethod
    def _fit_wrapped(model, operand, labels):
        """Fit, translating learner ``ValueError``\\ s (bad labels, shape
        mismatches) into :class:`PlanError` so the facade raises only from
        the repro exception hierarchy."""
        try:
            return model.fit(operand, labels)
        except ValueError as error:
            raise PlanError(str(error)) from error

    # -- federated strategy --------------------------------------------------------------
    def _execute_federated(self, plan: ExecutionPlan) -> TrainingResult:
        dataset = plan.dataset
        if dataset.scenario is ScenarioType.UNION:
            return self._execute_horizontal(plan)
        return self._execute_vertical(plan)

    def _execute_vertical(self, plan: ExecutionPlan) -> TrainingResult:
        dataset = plan.dataset
        model_spec = plan.model
        if dataset.label_column is None:
            raise PlanError("vertical federated learning requires a label column")
        parties, alignment = self._parties_from_dataset(dataset)
        model = VerticalFederatedLinearRegression(
            learning_rate=model_spec.learning_rate,
            n_iterations=model_spec.n_iterations,
            l2_penalty=model_spec.l2_penalty,
            use_encryption=True,
            network=self.orchestrator.network,
        ).fit(parties, alignment=alignment)
        report = model.report_
        metrics = {
            "final_loss": report.final_loss,
            "aligned_rows": float(report.n_aligned_rows),
            "encryption_operations": float(report.encryption_operations),
        }
        predictions = model.predict(parties, alignment=alignment)
        return TrainingResult(plan=plan, model=model, metrics=metrics, predictions=predictions)

    def _execute_horizontal(self, plan: ExecutionPlan) -> TrainingResult:
        dataset = plan.dataset
        model_spec = plan.model
        if dataset.label_column is None:
            raise PlanError("horizontal federated learning requires a label column")
        parties = []
        label = dataset.label_column
        feature_columns = dataset.feature_columns
        for factor in dataset.factors:
            mapped_targets = [
                factor.mapping.correspondences[c] for c in factor.source_columns
            ]
            if label not in mapped_targets:
                raise PlanError(
                    f"HFL requires every source to hold the label column; {factor.name!r} does not"
                )
            label_local = factor.source_columns[mapped_targets.index(label)]
            feature_locals = [
                source_col
                for source_col, target_col in zip(factor.source_columns, mapped_targets)
                if target_col in feature_columns
            ]
            column_indices = [factor.source_columns.index(c) for c in feature_locals]
            label_index = factor.source_columns.index(label_local)
            parties.append(
                Party(
                    name=factor.name,
                    data=factor.data[:, column_indices],
                    feature_names=[
                        factor.mapping.correspondences[c] for c in feature_locals
                    ],
                    labels=factor.data[:, label_index],
                )
            )
        task_model = "logistic" if plan.model.task == "classification" else "linear"
        model = FederatedAveraging(
            model=task_model,
            n_rounds=model_spec.n_iterations,
            learning_rate=model_spec.learning_rate,
            network=self.orchestrator.network,
        ).fit(parties)
        metrics = {"final_loss": model.report_.final_loss}
        return TrainingResult(plan=plan, model=model, metrics=metrics)

    def _parties_from_dataset(
        self, dataset: IntegratedDataset
    ) -> Tuple[List[Party], Dict[str, List[int]]]:
        """Build one VFL party per source factor, aligned on shared target rows.

        The shared sample space is the set of target rows covered by every
        source (the inner-join rows); each party's aligned row order is its
        compressed indicator restricted to those rows — the §V-A
        construction ``X_k = I_k D_k M_kᵀ``.
        """
        label = dataset.label_column
        shared_rows = None
        for factor in dataset.factors:
            covered = set(factor.indicator.mapped_target_rows())
            shared_rows = covered if shared_rows is None else (shared_rows & covered)
        shared_rows = sorted(shared_rows or [])
        if not shared_rows:
            raise PlanError("the sources share no rows; vertical federated learning is impossible")

        parties: List[Party] = []
        alignment: Dict[str, List[int]] = {}
        label_assigned = False
        for factor in dataset.factors:
            compressed = factor.indicator.compressed
            local_rows = [int(compressed[i]) for i in shared_rows]
            mapped_targets = [factor.mapping.correspondences[c] for c in factor.source_columns]
            labels = None
            if label is not None and label in mapped_targets and not label_assigned:
                label_index = mapped_targets.index(label)
                labels = factor.data[:, label_index]
                label_assigned = True
            feature_locals = [
                source_col
                for source_col, target_col in zip(factor.source_columns, mapped_targets)
                if target_col != label
            ]
            # Drop feature columns whose every shared-row cell is redundant —
            # another party already contributes them. The restriction of R_k
            # to the shared rows never densifies the mask; column_mask() gives
            # the redundant fraction per target column.
            shared_redundancy = factor.redundancy.submatrix(
                np.asarray(shared_rows, dtype=int),
                np.arange(len(dataset.target_columns)),
            )
            redundant_fraction = shared_redundancy.column_mask()
            keep = []
            for source_col in feature_locals:
                target_col = factor.mapping.correspondences[source_col]
                target_index = dataset.target_columns.index(target_col)
                if redundant_fraction[target_index] < 1.0:
                    keep.append(source_col)
            if not keep and labels is None:
                continue
            column_indices = [factor.source_columns.index(c) for c in keep]
            parties.append(
                Party(
                    name=factor.name,
                    data=factor.data[:, column_indices] if column_indices else
                    np.zeros((factor.n_rows, 0)),
                    feature_names=[factor.mapping.correspondences[c] for c in keep],
                    labels=labels,
                )
            )
            alignment[factor.name] = local_rows
        if not any(p.has_labels for p in parties):
            raise PlanError("no party ended up holding the label column")
        return parties, alignment

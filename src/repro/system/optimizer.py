"""The Amalur optimizer: choose factorize, materialize or federate (Figure 3).

Given the integrated dataset (hence its DI metadata), the model to train
and the privacy constraints of the silos holding the sources, the
optimizer produces an :class:`repro.system.plan.ExecutionPlan`:

1. if any participating silo forbids exporting even derived aggregates,
   the learning process is split across silos — federated learning;
2. otherwise the DI-metadata cost model of §IV-B (amortized over the
   model's training iterations) decides between factorized pushdown and
   central materialization.
"""

from __future__ import annotations

from typing import Optional

from repro.backends import AutoBackend, Backend, DenseBackend, SparseBackend
from repro.costmodel.amalur_cost import AmalurCostModel
from repro.costmodel.decision import Decision, DecisionAdvisor
from repro.costmodel.parameters import CostParameters
from repro.matrices.builder import IntegratedDataset
from repro.metadata.mappings import ScenarioType
from repro.silos.orchestrator import Orchestrator
from repro.system.plan import ExecutionPlan, ModelSpec, PlanStep


class Optimizer:
    """Cost- and constraint-based strategy selection."""

    def __init__(
        self,
        orchestrator: Optional[Orchestrator] = None,
        cost_model: Optional[AmalurCostModel] = None,
    ):
        self.orchestrator = orchestrator
        self.cost_model = cost_model or AmalurCostModel()

    def plan(self, dataset: IntegratedDataset, model: ModelSpec) -> ExecutionPlan:
        """Produce an execution plan for training ``model`` over ``dataset``."""
        federated_reason = self._federation_required(dataset)
        if federated_reason:
            return self._federated_plan(dataset, model, federated_reason)

        cost_model = AmalurCostModel(
            write_weight=self.cost_model.write_weight,
            read_weight=self.cost_model.read_weight,
            lift_weight=self.cost_model.lift_weight,
            per_source_overhead=self.cost_model.per_source_overhead,
            transfer_weight=self.cost_model.transfer_weight,
            reuse=max(model.n_iterations, 1),
        )
        advisor = DecisionAdvisor(method="amalur", cost_model=cost_model)
        parameters = CostParameters.from_dataset(dataset)
        outcome = advisor.decide(parameters)

        steps = []
        backend: Optional[Backend] = None
        if outcome.decision is Decision.FACTORIZE:
            backend = self._select_backend(parameters)
            for index, factor in enumerate(dataset.factors):
                steps.append(
                    PlanStep(
                        "push model operators down to the silo "
                        f"({parameters.backend_choice(index)} kernel)",
                        target=factor.name,
                    )
                )
            steps.append(PlanStep("assemble local results with redundancy masks"))
            steps.append(PlanStep("iterate gradient updates centrally"))
        else:
            for factor in dataset.factors:
                steps.append(PlanStep("export source table to the orchestrator", target=factor.name))
            steps.append(PlanStep("materialize the target table (join + dedup)"))
            steps.append(PlanStep("train the model on the materialized target"))
        return ExecutionPlan(
            strategy=outcome.decision,
            dataset=dataset,
            model=model,
            steps=steps,
            cost_breakdown=outcome.breakdown,
            explanation=outcome.explanation,
            backend=backend,
        )

    @staticmethod
    def _select_backend(parameters: CostParameters) -> Backend:
        """Pick the execution backend from the per-source density decisions.

        All-dense sources run the plain dense engine, all-sparse sources the
        CSR engine; a mix gets the per-factor dispatcher, all three sharing
        the threshold the cost model priced the plan with.
        """
        choices = set(parameters.backend_choices)
        if choices == {"sparse"}:
            return SparseBackend()
        if choices == {"dense"}:
            return DenseBackend()
        return AutoBackend(parameters.sparse_density_threshold)

    # -- helpers ------------------------------------------------------------------
    def _federation_required(self, dataset: IntegratedDataset) -> str:
        """Return a reason string when privacy constraints force FL, else ''."""
        if self.orchestrator is None:
            return ""
        for factor in dataset.factors:
            try:
                silo = self.orchestrator.silo_of_table(factor.name)
            except Exception:
                continue
            if not silo.allows_factorized_pushdown:
                return (
                    f"silo {silo.name!r} holding {factor.name!r} is private; "
                    "training must be split across silos"
                )
            if not silo.allows_export and dataset.scenario is ScenarioType.UNION:
                return (
                    f"silo {silo.name!r} cannot export rows and the union scenario has no "
                    "shared sample space for pushdown; use horizontal federated learning"
                )
        return ""

    def _federated_plan(
        self, dataset: IntegratedDataset, model: ModelSpec, reason: str
    ) -> ExecutionPlan:
        steps = [PlanStep("run private entity alignment (PSI) across silos")]
        if dataset.scenario is ScenarioType.UNION:
            steps.append(PlanStep("run federated averaging over the shared feature space"))
        else:
            steps.append(PlanStep("split the model vertically over the parties"))
            steps.append(PlanStep("exchange encrypted partial predictions and gradients"))
        return ExecutionPlan(
            strategy=Decision.FEDERATE,
            dataset=dataset,
            model=model,
            steps=steps,
            explanation=reason,
        )

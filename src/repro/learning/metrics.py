"""Evaluation metrics for the reproduction's ML models."""

from __future__ import annotations

import numpy as np


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean((y_true - y_pred) ** 2))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    residual = np.sum((y_true - y_pred) ** 2)
    total = np.sum((y_true - y_true.mean()) ** 2)
    if total == 0:
        return 0.0 if residual > 0 else 1.0
    return float(1.0 - residual / total)


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def log_loss(y_true: np.ndarray, probabilities: np.ndarray, eps: float = 1e-12) -> float:
    y_true = np.asarray(y_true, dtype=float).ravel()
    probabilities = np.clip(np.asarray(probabilities, dtype=float).ravel(), eps, 1 - eps)
    return float(
        -np.mean(y_true * np.log(probabilities) + (1 - y_true) * np.log(1 - probabilities))
    )

"""Machine-learning algorithms that run over materialized or factorized data.

Every estimator accepts either a dense ``numpy`` feature matrix or a
factorized matrix (:class:`repro.factorized.AmalurMatrix` /
:class:`repro.factorized.MorpheusMatrix`). The algorithms only touch the
data through left/transpose matrix multiplications, so factorized and
materialized training produce identical parameters — the equivalence the
paper's §IV relies on ("factorized learning does not affect model
training accuracy").
"""

from repro.learning.base import DenseMatrix, as_linop, LinearOperand
from repro.learning.linear_regression import LinearRegression
from repro.learning.logistic_regression import LogisticRegression
from repro.learning.streaming_gd import StreamingGD
from repro.learning.kmeans import KMeans
from repro.learning.gaussian_nmf import GaussianNMF
from repro.learning.metrics import (
    mean_squared_error,
    r2_score,
    accuracy_score,
    log_loss,
)

__all__ = [
    "DenseMatrix",
    "as_linop",
    "LinearOperand",
    "LinearRegression",
    "LogisticRegression",
    "StreamingGD",
    "KMeans",
    "GaussianNMF",
    "mean_squared_error",
    "r2_score",
    "accuracy_score",
    "log_loss",
]

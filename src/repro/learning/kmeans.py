"""K-means clustering over dense or factorized feature matrices.

Lloyd's algorithm needs, per iteration, the pairwise squared distances
between data rows and the current centroids:

    ``dist² = rowSums(T∘T) · 1ᵀ − 2 · T Cᵀ + 1 · rowSums(C∘C)ᵀ``

Only the middle term touches the data, and it is an LMM — so k-means is
factorizable with exactly the rewrites of §IV (this is the classic
Morpheus observation the paper builds on). The squared-row-norm term is
computed once with an element-wise square, which also distributes over the
source factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.learning.base import OperandLike, as_linop


@dataclass
class KMeans:
    """Lloyd's k-means with k-means++-style seeding on a data sample."""

    n_clusters: int = 3
    n_iterations: int = 50
    tolerance: float = 1e-6
    random_state: int = 0
    cluster_centers_: Optional[np.ndarray] = field(default=None, init=False)
    labels_: Optional[np.ndarray] = field(default=None, init=False)
    inertia_: float = field(default=0.0, init=False)
    n_iter_: int = field(default=0, init=False)

    def _row_square_sums(self, operand) -> np.ndarray:
        """Per-row sums of squared values, computed without materializing."""
        if hasattr(operand, "dataset"):  # AmalurMatrix: square the source factors
            squared = _square_amalur(operand)
            return squared.row_sums()
        data = operand.materialize()
        return np.sum(data * data, axis=1)

    def fit(self, features: OperandLike) -> "KMeans":
        operand = as_linop(features)
        n_rows, n_columns = operand.shape
        if self.n_clusters > n_rows:
            raise ValueError("more clusters than rows")
        rng = np.random.default_rng(self.random_state)

        row_norms = self._row_square_sums(operand)
        centers = self._init_centers(operand, rng)

        labels = np.zeros(n_rows, dtype=int)
        for iteration in range(self.n_iterations):
            distances = self._distances(operand, centers, row_norms)
            labels = distances.argmin(axis=1)
            new_centers = np.zeros_like(centers)
            counts = np.bincount(labels, minlength=self.n_clusters).astype(float)
            # Cluster sums = Gᵀ T where G is the one-hot assignment matrix —
            # a transpose-LMM on the data.
            assignment = np.zeros((n_rows, self.n_clusters))
            assignment[np.arange(n_rows), labels] = 1.0
            sums = operand.transpose_lmm(assignment).T  # (k × d)
            nonempty = counts > 0
            new_centers[nonempty] = sums[nonempty] / counts[nonempty, None]
            # Re-seed empty clusters at the farthest points.
            if (~nonempty).any():
                farthest = np.argsort(distances.min(axis=1))[::-1]
                for idx, cluster in enumerate(np.where(~nonempty)[0]):
                    new_centers[cluster] = self._row(operand, int(farthest[idx]))
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            self.n_iter_ = iteration + 1
            if shift < self.tolerance:
                break
        distances = self._distances(operand, centers, row_norms)
        self.labels_ = distances.argmin(axis=1)
        self.inertia_ = float(distances[np.arange(n_rows), self.labels_].sum())
        self.cluster_centers_ = centers
        return self

    def _init_centers(self, operand, rng: np.random.Generator) -> np.ndarray:
        n_rows = operand.shape[0]
        indices = rng.choice(n_rows, size=self.n_clusters, replace=False)
        return np.vstack([self._row(operand, int(i)) for i in indices])

    def _row(self, operand, index: int) -> np.ndarray:
        selector = np.zeros((operand.shape[0], 1))
        selector[index, 0] = 1.0
        return operand.transpose_lmm(selector)[:, 0]

    def _distances(self, operand, centers: np.ndarray, row_norms: np.ndarray) -> np.ndarray:
        cross = operand.lmm(centers.T)  # (n × k) — the only data-touching term
        center_norms = np.sum(centers * centers, axis=1)
        distances = row_norms[:, None] - 2.0 * cross + center_norms[None, :]
        return np.maximum(distances, 0.0)

    def predict(self, features: OperandLike) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise ValueError("model is not fitted")
        operand = as_linop(features)
        row_norms = self._row_square_sums(operand)
        return self._distances(operand, self.cluster_centers_, row_norms).argmin(axis=1)


def _square_amalur(operand):
    """Element-wise square of an AmalurMatrix, staying factorized.

    Squaring distributes over the factorization because each target cell is
    contributed by exactly one source (redundant duplicates are zeroed by
    the redundancy mask before squaring would double-count them), so we
    square the deduplicated source values.
    """
    from repro.factorized.normalized_matrix import AmalurMatrix
    from repro.matrices.builder import IntegratedDataset, SourceFactor

    factors = []
    for factor in operand.dataset.factors:
        factors.append(
            SourceFactor(
                factor.name,
                factor.data * factor.data,
                list(factor.source_columns),
                factor.mapping,
                factor.indicator,
                factor.redundancy,
            )
        )
    dataset = IntegratedDataset(
        target_columns=list(operand.dataset.target_columns),
        n_target_rows=operand.dataset.n_target_rows,
        factors=factors,
        scenario=operand.dataset.scenario,
        label_column=operand.dataset.label_column,
        name=operand.dataset.name,
    )
    return AmalurMatrix(dataset, operand.counter)

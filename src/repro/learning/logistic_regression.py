"""Binary logistic regression over dense or factorized feature matrices."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import telemetry as _telemetry
from repro.learning.base import OperandLike, as_linop
from repro.learning.metrics import log_loss


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


@dataclass
class LogisticRegression:
    """Binary logistic regression trained with full-batch gradient descent.

    The mortality-prediction task of the paper's running example (Figure 2)
    is exactly this model. Per iteration the data is touched through one
    LMM and one transpose-LMM, so factorized and materialized training are
    numerically identical.
    """

    learning_rate: float = 0.1
    n_iterations: int = 300
    l2_penalty: float = 0.0
    fit_intercept: bool = True
    tolerance: float = 0.0
    warm_start: bool = False
    coef_: Optional[np.ndarray] = field(default=None, init=False)
    intercept_: float = field(default=0.0, init=False)
    loss_history_: List[float] = field(default_factory=list, init=False)

    def fit(self, features: OperandLike, labels: np.ndarray) -> "LogisticRegression":
        operand = as_linop(features)
        labels = np.asarray(labels, dtype=float).ravel()
        n_rows, n_columns = operand.shape
        if labels.shape[0] != n_rows:
            raise ValueError(f"label vector has {labels.shape[0]} rows, features have {n_rows}")
        invalid = set(np.unique(labels)) - {0.0, 1.0}
        if invalid:
            raise ValueError(f"labels must be binary 0/1, found {sorted(invalid)}")

        if self.warm_start and self.coef_ is not None and self.coef_.size == n_columns:
            weights = np.asarray(self.coef_, dtype=np.float64).ravel().copy()
            intercept = float(self.intercept_)
        else:
            weights = np.zeros(n_columns)
            intercept = 0.0
        self.loss_history_ = []
        with _telemetry.span(
            "train.logistic_gd", rows=n_rows, columns=n_columns,
            iterations=self.n_iterations,
        ):
            for _ in range(self.n_iterations):
                logits = operand.lmm(weights[:, None])[:, 0] + intercept
                probabilities = _sigmoid(logits)
                loss = log_loss(labels, probabilities)
                self.loss_history_.append(loss)
                if _telemetry.ENABLED:
                    _telemetry.counter_add("gd.iterations")
                    _telemetry.observe("gd.logistic.loss", loss)
                errors = probabilities - labels
                gradient = operand.transpose_lmm(errors[:, None])[:, 0] / n_rows
                if self.l2_penalty:
                    gradient = gradient + self.l2_penalty * weights / n_rows
                step = self.learning_rate * gradient
                new_weights = weights - step
                if self.fit_intercept:
                    intercept -= self.learning_rate * float(errors.mean())
                if self.tolerance and np.linalg.norm(step) < self.tolerance:
                    weights = new_weights
                    break
                weights = new_weights
        self.coef_ = weights
        self.intercept_ = intercept
        return self

    def predict_proba(self, features: OperandLike) -> np.ndarray:
        if self.coef_ is None:
            raise ValueError("model is not fitted")
        operand = as_linop(features)
        logits = operand.lmm(self.coef_[:, None])[:, 0] + self.intercept_
        return _sigmoid(logits)

    def predict(self, features: OperandLike, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(int)

    def score(self, features: OperandLike, labels: np.ndarray) -> float:
        from repro.learning.metrics import accuracy_score

        return accuracy_score(np.asarray(labels).ravel(), self.predict(features))

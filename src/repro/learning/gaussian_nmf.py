"""Gaussian non-negative matrix factorization (multiplicative updates).

GNMF is one of the four workloads the Morpheus line of work (paper ref.
[27]) evaluates factorized learning on. The multiplicative update rules

    ``H ← H ∘ (Wᵀ T) / (Wᵀ W H)``
    ``W ← W ∘ (T Hᵀ) / (W H Hᵀ)``

touch the data matrix ``T`` only through one transpose-LMM (``Wᵀ T``) and
one LMM (``T Hᵀ``) per iteration, so the algorithm factorizes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.learning.base import OperandLike, as_linop

_EPS = 1e-12


@dataclass
class GaussianNMF:
    """Rank-``n_components`` NMF with Frobenius loss and multiplicative updates."""

    n_components: int = 2
    n_iterations: int = 100
    random_state: int = 0
    components_: Optional[np.ndarray] = field(default=None, init=False)
    weights_: Optional[np.ndarray] = field(default=None, init=False)
    reconstruction_error_: float = field(default=0.0, init=False)
    error_history_: List[float] = field(default_factory=list, init=False)

    def fit(self, features: OperandLike) -> "GaussianNMF":
        operand = as_linop(features)
        n_rows, n_columns = operand.shape
        rng = np.random.default_rng(self.random_state)
        weights = rng.random((n_rows, self.n_components)) + 0.1
        components = rng.random((self.n_components, n_columns)) + 0.1

        self.error_history_ = []
        for _ in range(self.n_iterations):
            # H update: numerator Wᵀ T (transpose-LMM), denominator WᵀW H.
            numerator_h = operand.transpose_lmm(weights).T  # (k × d)
            denominator_h = (weights.T @ weights) @ components + _EPS
            components = components * numerator_h / denominator_h

            # W update: numerator T Hᵀ (LMM), denominator W H Hᵀ.
            numerator_w = operand.lmm(components.T)  # (n × k)
            denominator_w = weights @ (components @ components.T) + _EPS
            weights = weights * numerator_w / denominator_w

            self.error_history_.append(self._error(operand, weights, components))

        self.weights_ = weights
        self.components_ = components
        self.reconstruction_error_ = self.error_history_[-1] if self.error_history_ else 0.0
        return self

    def _error(self, operand, weights: np.ndarray, components: np.ndarray) -> float:
        """Frobenius reconstruction error, computed without materializing T.

        ``||T − WH||² = ||T||² − 2·tr(Hᵀ Wᵀ T) + ||WH||²`` and ``Wᵀ T`` is a
        transpose-LMM.
        """
        cross = operand.transpose_lmm(weights).T  # Wᵀ T, shape (k × d)
        norm_t = self._squared_norm(operand)
        term_cross = float(np.sum(cross * components))
        reconstruction = weights @ components
        norm_wh = float(np.sum(reconstruction * reconstruction))
        return max(norm_t - 2.0 * term_cross + norm_wh, 0.0)

    def _squared_norm(self, operand) -> float:
        if not hasattr(self, "_cached_norm"):
            if hasattr(operand, "dataset"):
                from repro.learning.kmeans import _square_amalur

                self._cached_norm = float(_square_amalur(operand).total_sum())
            else:
                data = operand.materialize()
                self._cached_norm = float(np.sum(data * data))
        return self._cached_norm

    def transform(self, features: OperandLike) -> np.ndarray:
        """Project new rows onto the learned components (one NNLS-ish pass)."""
        if self.components_ is None:
            raise ValueError("model is not fitted")
        operand = as_linop(features)
        rng = np.random.default_rng(self.random_state)
        weights = rng.random((operand.shape[0], self.n_components)) + 0.1
        for _ in range(self.n_iterations):
            numerator = operand.lmm(self.components_.T)
            denominator = weights @ (self.components_ @ self.components_.T) + _EPS
            weights = weights * numerator / denominator
        return weights

    def reconstruct(self) -> np.ndarray:
        if self.components_ is None or self.weights_ is None:
            raise ValueError("model is not fitted")
        return self.weights_ @ self.components_

"""Mini-batch (row-block) gradient descent over factorized matrices.

:class:`StreamingGD` trains linear or logistic regression over an
:class:`~repro.factorized.AmalurMatrix` by accumulating each full-batch
gradient over fixed target-row blocks instead of whole-matrix operands.
The iteration *mathematics* is identical to the full-batch solvers
(:class:`~repro.learning.LinearRegression` with ``solver="gd"`` and
:class:`~repro.learning.LogisticRegression`): every block contributes its
exact share of the same LMM / transpose-LMM, so the learned weights match
full-batch training to floating-point reassociation (≤ 1e-8 in the parity
suite) — while the working set stays one row block per factor. Combined
with factors spilled to a :class:`~repro.streaming.SpillStore`, models
train on datasets whose materialized form exceeds RAM.

With more than one worker (``num_workers``, or the global
``repro.parallel`` configuration above its row threshold) each iteration
maps the row blocks over the shared pool through an ordered
bounded-window pipeline: workers pull spilled blocks off the memmap and
compute their loss/gradient partials — overlapping spill I/O with the
current matmuls — while the calling thread reduces the partials in block
order and releases pages as blocks retire. The partition is the same
``block_rows`` grid at every worker count, so parallel weights are
identical for any worker count >= 2 and within reassociation (<= 1e-8)
of the serial path; one worker runs the exact legacy loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro import parallel as _parallel
from repro import telemetry as _telemetry
from repro.exceptions import CheckpointError, FactorizationError
from repro.factorized.operator_plan import BlockedMatrixView
from repro.reliability.checkpoint import CheckpointManager

_LINEAR_DEFAULTS = {"learning_rate": 0.01, "n_iterations": 200}
_LOGISTIC_DEFAULTS = {"learning_rate": 0.1, "n_iterations": 300}

_LOG_EPS = 1e-12  # the log_loss clipping epsilon of repro.learning.metrics


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


@dataclass
class StreamingGD:
    """Row-block full-batch gradient descent for out-of-core training.

    ``task`` is ``"linear"`` (least squares, mirroring
    ``LinearRegression(solver="gd")``) or ``"logistic"`` (mirroring
    ``LogisticRegression``). ``learning_rate`` / ``n_iterations`` default
    to the corresponding full-batch model's defaults when left ``None``.

    ``release_pages`` is invoked after every processed block (when given):
    with spilled factors, pass ``SpillStore.release`` so memory-mapped
    pages leave the process RSS as soon as a block is consumed.

    ``num_workers`` overrides the global ``repro.parallel`` worker count
    for this model: ``None`` inherits it (gated by the global row
    threshold so small fits stay serial), ``1`` forces the exact legacy
    loop, and any larger value fans blocks over the shared pool.

    With a ``checkpoint`` manager, training state — weights, intercept,
    loss history, completed-iteration counter, block cursor — is saved
    atomically every ``checkpoint_every`` completed epochs, and ``fit``
    resumes from the newest valid checkpoint. Each epoch is a pure
    function of the restored state (full-batch gradient over a fixed
    block grid), so an interrupted run resumed from its last checkpoint
    produces **bit-identical** weights to an uninterrupted run.
    Checkpointing defaults off and costs nothing when off.
    """

    task: str = "linear"
    block_rows: int = 65_536
    learning_rate: Optional[float] = None
    n_iterations: Optional[int] = None
    l2_penalty: float = 0.0
    fit_intercept: bool = True
    tolerance: float = 0.0
    release_pages: Optional[Callable[[], None]] = None
    num_workers: Optional[int] = None
    checkpoint: Optional[CheckpointManager] = None
    checkpoint_every: int = 1
    coef_: Optional[np.ndarray] = field(default=None, init=False)
    intercept_: float = field(default=0.0, init=False)
    loss_history_: List[float] = field(default_factory=list, init=False)
    resumed_from_: Optional[int] = field(default=None, init=False)

    def _hyper(self, name: str) -> float:
        explicit = getattr(self, name)
        if explicit is not None:
            return explicit
        defaults = _LINEAR_DEFAULTS if self.task == "linear" else _LOGISTIC_DEFAULTS
        return defaults[name]

    def _released(self) -> None:
        if self.release_pages is not None:
            self.release_pages()

    def _effective_workers(self, n_rows: int) -> int:
        if self.num_workers is not None:
            return max(1, int(self.num_workers))
        if _parallel.should_parallelize(n_rows):
            return _parallel.get_num_workers()
        return 1

    # -- checkpointing ----------------------------------------------------------------
    def _restore_state(self, n_columns: int):
        """``(weights, intercept, loss_history, start_iteration)`` from the
        newest valid checkpoint, or ``None`` for a fresh start."""
        if self.checkpoint is None:
            return None
        restored = self.checkpoint.latest()
        if restored is None:
            return None
        if restored.metadata.get("task") != self.task:
            raise CheckpointError(
                f"checkpoint at {restored.path} was written by a "
                f"{restored.metadata.get('task')!r} model, not {self.task!r}"
            )
        weights = restored.arrays["weights"]
        if weights.shape != (n_columns, 1):
            raise CheckpointError(
                f"checkpoint at {restored.path} holds weights of shape "
                f"{weights.shape}, expected {(n_columns, 1)}"
            )
        self.resumed_from_ = restored.step
        if _telemetry.ENABLED:
            _telemetry.counter_add("checkpoint.resumes")
        return (
            weights.copy(),
            float(restored.metadata.get("intercept", 0.0)),
            restored.arrays["loss_history"].tolist(),
            restored.step,
        )

    def _save_state(self, iteration: int, weights: np.ndarray, intercept: float) -> None:
        """Persist epoch-boundary state: ``iteration`` epochs are complete,
        so the block cursor is always 0 — the next epoch starts clean."""
        if self.checkpoint is None:
            return
        every = max(1, int(self.checkpoint_every))
        if iteration % every != 0:
            return
        self.checkpoint.save(
            iteration,
            {
                "weights": weights,
                "loss_history": np.asarray(self.loss_history_, dtype=np.float64),
            },
            {
                "task": self.task,
                "intercept": float(intercept),
                "iteration": int(iteration),
                "block_cursor": 0,
            },
        )

    # -- label extraction -----------------------------------------------------------
    def _extract_labels(self, matrix) -> np.ndarray:
        label_column = matrix.dataset.label_column
        if label_column is None:
            raise FactorizationError(
                "StreamingGD needs explicit labels or a dataset label column"
            )
        view = matrix.blocked(columns=[label_column])
        selector = np.ones((1, 1))
        labels = np.empty(view.n_rows, dtype=np.float64)
        workers = self._effective_workers(view.n_rows)
        if workers > 1:

            def _fill(bounds: Tuple[int, int]) -> None:
                start, stop = bounds
                labels[start:stop] = view.lmm_block(selector, start, stop)[:, 0]

            for _ in _parallel.imap_ordered(
                _fill, view.row_blocks(self.block_rows), workers=workers
            ):
                self._released()
        else:
            for start, stop in view.row_blocks(self.block_rows):
                labels[start:stop] = view.lmm_block(selector, start, stop)[:, 0]
                self._released()
        return labels

    # -- fitting ---------------------------------------------------------------------
    def fit(self, matrix, labels: Optional[np.ndarray] = None) -> "StreamingGD":
        """Train on a factorized matrix, block by block.

        With ``labels=None`` the dataset's label column provides the
        targets (extracted block-wise) and the features are the remaining
        target columns; with explicit ``labels`` every column of ``matrix``
        is a feature — the same contract as the full-batch estimators.
        """
        if self.task not in ("linear", "logistic"):
            raise ValueError(f"unknown task {self.task!r}")
        if labels is None:
            targets = self._extract_labels(matrix)
            feature_columns = [
                c for c in matrix.dataset.target_columns
                if c != matrix.dataset.label_column
            ]
            view = matrix.blocked(columns=feature_columns)
        else:
            targets = np.asarray(labels, dtype=float).ravel()
            view = matrix.blocked()
        if targets.shape[0] != view.n_rows:
            raise ValueError(
                f"target vector has {targets.shape[0]} rows, features have {view.n_rows}"
            )
        blocks = view.row_blocks(self.block_rows)
        with _telemetry.span(
            "train.streaming_gd", task=self.task, rows=view.n_rows,
            block_rows=self.block_rows,
        ):
            if self.task == "linear":
                self._fit_linear(view, blocks, targets)
            else:
                self._fit_logistic(view, blocks, targets)
        return self

    def _fit_linear(self, view: BlockedMatrixView, blocks, targets: np.ndarray) -> None:
        n_rows, n_columns = view.shape
        target_offset = float(targets.mean()) if self.fit_intercept else 0.0
        centered = targets - target_offset if self.fit_intercept else targets
        centered_column = np.asarray(centered, dtype=np.float64)[:, None]
        learning_rate = self._hyper("learning_rate")
        n_iterations = int(self._hyper("n_iterations"))
        weights = np.zeros((n_columns, 1))
        self.loss_history_ = []
        start_iteration = 0
        restored = self._restore_state(n_columns)
        if restored is not None:
            # target_offset is recomputed above — a pure function of the
            # targets — so only weights/history/counter need restoring.
            weights, _, self.loss_history_, start_iteration = restored
        workers = self._effective_workers(n_rows)

        def _block_piece(
            block_weights: np.ndarray, bounds: Tuple[int, int]
        ) -> Tuple[float, np.ndarray]:
            start, stop = bounds
            predictions = view.lmm_block(block_weights, start, stop)
            residuals = predictions - centered_column[start:stop]
            partial = np.zeros((n_columns, 1))
            view.transpose_lmm_add(residuals, start, stop, partial)
            return float(np.sum(residuals * residuals)), partial

        for iteration in range(start_iteration, n_iterations):
            loss_sum = 0.0
            gradient = np.zeros((n_columns, 1))
            if workers > 1:
                current = weights
                for loss_piece, partial in _parallel.imap_ordered(
                    lambda bounds: _block_piece(current, bounds), blocks, workers=workers
                ):
                    loss_sum += loss_piece
                    gradient += partial
                    self._released()
            else:
                for start, stop in blocks:
                    predictions = view.lmm_block(weights, start, stop)
                    residuals = predictions - centered_column[start:stop]
                    loss_sum += float(np.sum(residuals * residuals))
                    view.transpose_lmm_add(residuals, start, stop, gradient)
                    self._released()
            self.loss_history_.append(loss_sum / n_rows)
            if _telemetry.ENABLED:
                _telemetry.counter_add("gd.iterations")
                _telemetry.observe("gd.streaming.loss", self.loss_history_[-1])
            gradient /= n_rows
            if self.l2_penalty:
                gradient = gradient + self.l2_penalty * weights / n_rows
            new_weights = weights - learning_rate * gradient
            converged = bool(
                self.tolerance
                and np.linalg.norm(new_weights - weights) < self.tolerance
            )
            weights = new_weights
            self._save_state(iteration + 1, weights, target_offset)
            if converged:
                break
        self.coef_ = weights[:, 0]
        self.intercept_ = target_offset

    def _fit_logistic(self, view: BlockedMatrixView, blocks, targets: np.ndarray) -> None:
        n_rows, n_columns = view.shape
        invalid = set(np.unique(targets)) - {0.0, 1.0}
        if invalid:
            raise ValueError(f"labels must be binary 0/1, found {sorted(invalid)}")
        learning_rate = self._hyper("learning_rate")
        n_iterations = int(self._hyper("n_iterations"))
        weights = np.zeros((n_columns, 1))
        intercept = 0.0
        self.loss_history_ = []
        start_iteration = 0
        restored = self._restore_state(n_columns)
        if restored is not None:
            weights, intercept, self.loss_history_, start_iteration = restored
        workers = self._effective_workers(n_rows)

        def _block_piece(
            block_weights: np.ndarray, block_intercept: float, bounds: Tuple[int, int]
        ) -> Tuple[float, float, np.ndarray]:
            start, stop = bounds
            logits = view.lmm_block(block_weights, start, stop)[:, 0] + block_intercept
            probabilities = _sigmoid(logits)
            clipped = np.clip(probabilities, _LOG_EPS, 1 - _LOG_EPS)
            y = targets[start:stop]
            loss_piece = float(
                -np.sum(y * np.log(clipped) + (1 - y) * np.log(1 - clipped))
            )
            errors = probabilities - y
            partial = np.zeros((n_columns, 1))
            view.transpose_lmm_add(errors[:, None], start, stop, partial)
            return loss_piece, float(errors.sum()), partial

        for iteration in range(start_iteration, n_iterations):
            loss_sum = 0.0
            error_sum = 0.0
            gradient = np.zeros((n_columns, 1))
            if workers > 1:
                current, current_intercept = weights, intercept
                for loss_piece, error_piece, partial in _parallel.imap_ordered(
                    lambda bounds: _block_piece(current, current_intercept, bounds),
                    blocks,
                    workers=workers,
                ):
                    loss_sum += loss_piece
                    error_sum += error_piece
                    gradient += partial
                    self._released()
            else:
                for start, stop in blocks:
                    logits = view.lmm_block(weights, start, stop)[:, 0] + intercept
                    probabilities = _sigmoid(logits)
                    clipped = np.clip(probabilities, _LOG_EPS, 1 - _LOG_EPS)
                    y = targets[start:stop]
                    loss_sum += float(
                        -np.sum(y * np.log(clipped) + (1 - y) * np.log(1 - clipped))
                    )
                    errors = probabilities - y
                    error_sum += float(errors.sum())
                    view.transpose_lmm_add(errors[:, None], start, stop, gradient)
                    self._released()
            self.loss_history_.append(loss_sum / n_rows)
            if _telemetry.ENABLED:
                _telemetry.counter_add("gd.iterations")
                _telemetry.observe("gd.streaming.loss", self.loss_history_[-1])
            gradient /= n_rows
            if self.l2_penalty:
                gradient = gradient + self.l2_penalty * weights / n_rows
            step = learning_rate * gradient
            new_weights = weights - step
            if self.fit_intercept:
                intercept -= learning_rate * (error_sum / n_rows)
            converged = bool(
                self.tolerance and np.linalg.norm(step) < self.tolerance
            )
            weights = new_weights
            self._save_state(iteration + 1, weights, intercept)
            if converged:
                break
        self.coef_ = weights[:, 0]
        self.intercept_ = intercept

    # -- inference --------------------------------------------------------------------
    def decision_function(self, matrix, columns: Optional[List[str]] = None) -> np.ndarray:
        """``X @ coef_ + intercept_`` computed block-wise."""
        if self.coef_ is None:
            raise ValueError("model is not fitted")
        if columns is None and matrix.dataset.label_column is not None:
            columns = [
                c for c in matrix.dataset.target_columns
                if c != matrix.dataset.label_column
            ]
        view = matrix.blocked(columns=columns)
        out = np.empty(view.n_rows, dtype=np.float64)
        weights = self.coef_[:, None]
        workers = self._effective_workers(view.n_rows)
        if workers > 1:

            def _fill(bounds: Tuple[int, int]) -> None:
                start, stop = bounds
                out[start:stop] = view.lmm_block(weights, start, stop)[:, 0]

            for _ in _parallel.imap_ordered(
                _fill, view.row_blocks(self.block_rows), workers=workers
            ):
                self._released()
        else:
            for start, stop in view.row_blocks(self.block_rows):
                out[start:stop] = view.lmm_block(weights, start, stop)[:, 0]
                self._released()
        return out + self.intercept_

    def predict(self, matrix, columns: Optional[List[str]] = None) -> np.ndarray:
        scores = self.decision_function(matrix, columns)
        if self.task == "logistic":
            return (_sigmoid(scores) >= 0.5).astype(int)
        return scores

"""Common interface shared by dense and factorized data matrices.

Estimators in :mod:`repro.learning` interact with their input only through
the operations defined here (LMM, transpose-LMM, cross-product, shapes),
so the same training code runs unchanged over a dense numpy array, an
:class:`repro.factorized.AmalurMatrix`, or a
:class:`repro.factorized.MorpheusMatrix`.
"""

from __future__ import annotations

from typing import Protocol, Tuple, Union, runtime_checkable

import numpy as np

from repro.exceptions import FactorizationError


@runtime_checkable
class LinearOperand(Protocol):
    """Anything that supports the matrix operations estimators need."""

    @property
    def shape(self) -> Tuple[int, int]: ...

    def lmm(self, x: np.ndarray) -> np.ndarray: ...

    def transpose_lmm(self, x: np.ndarray) -> np.ndarray: ...

    def crossprod(self) -> np.ndarray: ...

    def materialize(self) -> np.ndarray: ...


class DenseMatrix:
    """Adapter giving a plain numpy array the :class:`LinearOperand` interface."""

    def __init__(self, data: np.ndarray):
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise FactorizationError(f"expected a 2-D matrix, got shape {data.shape}")
        self._data = data

    @property
    def shape(self) -> Tuple[int, int]:
        return self._data.shape

    @property
    def n_rows(self) -> int:
        return self._data.shape[0]

    @property
    def n_columns(self) -> int:
        return self._data.shape[1]

    def lmm(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        return self._data @ x

    def rmm(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        return x @ self._data

    def transpose_lmm(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        return self._data.T @ x

    def crossprod(self) -> np.ndarray:
        return self._data.T @ self._data

    def row_sums(self) -> np.ndarray:
        return self._data.sum(axis=1)

    def column_sums(self) -> np.ndarray:
        return self._data.sum(axis=0)

    def total_sum(self) -> float:
        return float(self._data.sum())

    def materialize(self) -> np.ndarray:
        return self._data.copy()

    def __repr__(self) -> str:
        return f"DenseMatrix(shape={self.shape})"


OperandLike = Union[np.ndarray, LinearOperand]


def as_linop(data: OperandLike) -> LinearOperand:
    """Wrap a numpy array in :class:`DenseMatrix`; pass operands through."""
    if isinstance(data, np.ndarray):
        return DenseMatrix(data)
    if isinstance(data, LinearOperand):
        return data
    raise FactorizationError(
        f"cannot use object of type {type(data).__name__} as a data matrix"
    )

"""Linear regression over dense or factorized feature matrices."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import telemetry as _telemetry
from repro.learning.base import OperandLike, as_linop


@dataclass
class LinearRegression:
    """Least-squares linear regression.

    Two solvers are available:

    * ``solver="gd"`` — full-batch gradient descent; every iteration needs
      one LMM (predictions) and one transpose-LMM (gradient), the two
      operators the paper's factorization rewrite targets.
    * ``solver="normal"`` — the normal equations ``(XᵀX + λI) w = Xᵀ y``,
      which exercises the factorized cross-product.

    Attributes set after :meth:`fit`: ``coef_`` (weights), ``intercept_``,
    ``loss_history_`` (for gd).
    """

    solver: str = "gd"
    learning_rate: float = 0.01
    n_iterations: int = 200
    l2_penalty: float = 0.0
    fit_intercept: bool = True
    tolerance: float = 0.0
    warm_start: bool = False
    coef_: Optional[np.ndarray] = field(default=None, init=False)
    intercept_: float = field(default=0.0, init=False)
    loss_history_: List[float] = field(default_factory=list, init=False)

    def fit(self, features: OperandLike, targets: np.ndarray) -> "LinearRegression":
        operand = as_linop(features)
        targets = np.asarray(targets, dtype=float).ravel()
        n_rows, n_columns = operand.shape
        if targets.shape[0] != n_rows:
            raise ValueError(
                f"target vector has {targets.shape[0]} rows, features have {n_rows}"
            )
        centered_targets = targets
        target_offset = 0.0
        if self.fit_intercept:
            target_offset = float(targets.mean())
            centered_targets = targets - target_offset
        if self.solver == "normal":
            self.coef_ = self._fit_normal(operand, centered_targets, n_columns)
        elif self.solver == "gd":
            self.coef_ = self._fit_gd(operand, centered_targets, n_columns)
        else:
            raise ValueError(f"unknown solver {self.solver!r}")
        # Features are left uncentred (centring would break the factorized
        # representation), so the intercept is simply the target mean.
        self.intercept_ = target_offset if self.fit_intercept else 0.0
        return self

    def _fit_normal(self, operand, targets: np.ndarray, n_columns: int) -> np.ndarray:
        # Factorized operands cache the Gram matrix, so repeated fits (and
        # the silo orchestrator's retries) pay for crossprod once.
        gram = operand.crossprod()
        if self.l2_penalty:
            gram = gram + self.l2_penalty * np.eye(n_columns)
        moment = operand.transpose_lmm(targets[:, None])[:, 0]
        return np.linalg.solve(gram + 1e-12 * np.eye(n_columns), moment)

    def _fit_gd(self, operand, targets: np.ndarray, n_columns: int) -> np.ndarray:
        # Column-vector operands allocated once: every iteration then hands
        # the factorized operand a float64 2-D array, which its compiled
        # plans accept without re-validation copies or reshapes.
        if self.warm_start and self.coef_ is not None and self.coef_.size == n_columns:
            weights = np.asarray(self.coef_, dtype=np.float64).reshape(n_columns, 1).copy()
        else:
            weights = np.zeros((n_columns, 1))
        targets_column = np.asarray(targets, dtype=np.float64)[:, None]
        n_rows = operand.shape[0]
        self.loss_history_ = []
        with _telemetry.span(
            "train.linear_gd", rows=n_rows, columns=n_columns,
            iterations=self.n_iterations,
        ):
            for _ in range(self.n_iterations):
                predictions = operand.lmm(weights)
                residuals = predictions - targets_column
                # mean_squared_error(targets, predictions) on the 1-D views —
                # computed from the residuals to avoid another subtraction.
                loss = float(np.mean(residuals * residuals))
                self.loss_history_.append(loss)
                if _telemetry.ENABLED:
                    _telemetry.counter_add("gd.iterations")
                    _telemetry.observe("gd.linear.loss", loss)
                gradient = operand.transpose_lmm(residuals) / n_rows
                if self.l2_penalty:
                    gradient = gradient + self.l2_penalty * weights / n_rows
                new_weights = weights - self.learning_rate * gradient
                if self.tolerance and np.linalg.norm(new_weights - weights) < self.tolerance:
                    weights = new_weights
                    break
                weights = new_weights
        return weights[:, 0]

    def predict(self, features: OperandLike) -> np.ndarray:
        if self.coef_ is None:
            raise ValueError("model is not fitted")
        operand = as_linop(features)
        return operand.lmm(self.coef_[:, None])[:, 0] + self.intercept_

    def score(self, features: OperandLike, targets: np.ndarray) -> float:
        """Return the R² score on the given data."""
        from repro.learning.metrics import r2_score

        return r2_score(targets, self.predict(features))

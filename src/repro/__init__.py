"""Reproduction of "Amalur: Data Integration Meets Machine Learning" (ICDE 2023).

The library implements the paper's matrix representations of
data-integration metadata, factorized learning over the four silo
integration scenarios of Table I, the factorize-vs-materialize cost model,
and federated learning driven by DI metadata — plus the relational,
metadata, silo and workload-generation substrates they need.

Quick start::

    from repro import Amalur, ModelSpec, ScenarioType
    from repro.datagen import hospital_tables

    s1, s2 = hospital_tables()
    amalur = Amalur()
    amalur.add_silo("er")
    amalur.add_table("er", s1)
    amalur.add_silo("pulmonary")
    amalur.add_table("pulmonary", s2)
    dataset = amalur.integrate("S1", "S2", ["m", "a", "hr", "o"],
                               ScenarioType.FULL_OUTER_JOIN, label_column="m")
    result = amalur.train(dataset, ModelSpec(task="classification"))
"""

from repro.exceptions import AmalurError
from repro.backends import (
    AutoBackend,
    Backend,
    DenseBackend,
    SparseBackend,
    resolve_backend,
)
from repro.metadata.mappings import ScenarioType
from repro.matrices import (
    MappingMatrix,
    IndicatorMatrix,
    RedundancyMatrix,
    TrivialRedundancy,
    SparseComplementRedundancy,
    DenseRedundancy,
    IntegratedDataset,
    SourceFactor,
    integrate_tables,
)
from repro.factorized import AmalurMatrix, MorpheusMatrix
from repro.costmodel import AmalurCostModel, MorpheusRule, CostParameters, Decision
from repro.system import Amalur, ModelSpec, ExecutionPlan, TrainingResult

__version__ = "1.0.0"

__all__ = [
    "AmalurError",
    "Backend",
    "DenseBackend",
    "SparseBackend",
    "AutoBackend",
    "resolve_backend",
    "ScenarioType",
    "MappingMatrix",
    "IndicatorMatrix",
    "RedundancyMatrix",
    "TrivialRedundancy",
    "SparseComplementRedundancy",
    "DenseRedundancy",
    "IntegratedDataset",
    "SourceFactor",
    "integrate_tables",
    "AmalurMatrix",
    "MorpheusMatrix",
    "AmalurCostModel",
    "MorpheusRule",
    "CostParameters",
    "Decision",
    "Amalur",
    "ModelSpec",
    "ExecutionPlan",
    "TrainingResult",
    "__version__",
]

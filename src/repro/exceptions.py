"""Exception hierarchy for the Amalur reproduction library.

All library-raised errors derive from :class:`AmalurError` so that callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class AmalurError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(AmalurError):
    """Raised when a schema is malformed or two schemas are incompatible."""


class TableError(AmalurError):
    """Raised for invalid table construction or access."""


class JoinError(AmalurError):
    """Raised when a join cannot be performed (missing keys, bad types)."""


class MappingError(AmalurError):
    """Raised for invalid schema mappings or mapping matrices."""


class MatchingError(AmalurError):
    """Raised when schema matching or entity resolution fails."""


class FactorizationError(AmalurError):
    """Raised when a factorized operator cannot be applied."""


class CostModelError(AmalurError):
    """Raised for invalid cost-model inputs."""


class BackendError(AmalurError):
    """Raised for invalid compute-backend configuration or operands."""


class FederatedError(AmalurError):
    """Raised for federated-learning protocol violations."""


class PrivacyError(FederatedError):
    """Raised when an operation would violate a declared privacy constraint."""


class PlanError(AmalurError):
    """Raised when the optimizer cannot produce or execute a plan."""


class CatalogError(AmalurError):
    """Raised for metadata-catalog lookup/registration failures."""


class ServiceError(AmalurError):
    """Base class for online-serving failures (:mod:`repro.serving`)."""


class RequestTimeout(ServiceError):
    """Raised when a serving request misses its per-request deadline."""


class CapacityExceeded(ServiceError):
    """Raised when the service rejects a request: full queue or row cap."""


class StaleDatasetError(ServiceError):
    """Raised when a resident dataset is too stale to serve the request
    (accumulated deltas passed the staleness threshold and automatic
    rebuild is disabled, or the request pinned an outdated version)."""

"""Exception hierarchy for the Amalur reproduction library.

All library-raised errors derive from :class:`AmalurError` so that callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class AmalurError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(AmalurError):
    """Raised when a schema is malformed or two schemas are incompatible."""


class TableError(AmalurError):
    """Raised for invalid table construction or access."""


class JoinError(AmalurError):
    """Raised when a join cannot be performed (missing keys, bad types)."""


class MappingError(AmalurError):
    """Raised for invalid schema mappings or mapping matrices."""


class MatchingError(AmalurError):
    """Raised when schema matching or entity resolution fails."""


class FactorizationError(AmalurError):
    """Raised when a factorized operator cannot be applied."""


class CostModelError(AmalurError):
    """Raised for invalid cost-model inputs."""


class BackendError(AmalurError):
    """Raised for invalid compute-backend configuration or operands."""


class FederatedError(AmalurError):
    """Raised for federated-learning protocol violations."""


class PrivacyError(FederatedError):
    """Raised when an operation would violate a declared privacy constraint."""


class PlanError(AmalurError):
    """Raised when the optimizer cannot produce or execute a plan."""


class CatalogError(AmalurError):
    """Raised for metadata-catalog lookup/registration failures."""

"""Exception hierarchy for the Amalur reproduction library.

All library-raised errors derive from :class:`AmalurError` so that callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class AmalurError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(AmalurError):
    """Raised when a schema is malformed or two schemas are incompatible."""


class TableError(AmalurError):
    """Raised for invalid table construction or access."""


class JoinError(AmalurError):
    """Raised when a join cannot be performed (missing keys, bad types)."""


class MappingError(AmalurError):
    """Raised for invalid schema mappings or mapping matrices."""


class MatchingError(AmalurError):
    """Raised when schema matching or entity resolution fails."""


class FactorizationError(AmalurError):
    """Raised when a factorized operator cannot be applied."""


class CostModelError(AmalurError):
    """Raised for invalid cost-model inputs."""


class BackendError(AmalurError):
    """Raised for invalid compute-backend configuration or operands."""


class FederatedError(AmalurError):
    """Raised for federated-learning protocol violations."""


class PrivacyError(FederatedError):
    """Raised when an operation would violate a declared privacy constraint."""


class PlanError(AmalurError):
    """Raised when the optimizer cannot produce or execute a plan."""


class CatalogError(AmalurError):
    """Raised for metadata-catalog lookup/registration failures."""


class TransientError(AmalurError):
    """A failure that is expected to succeed on retry (flaky I/O, an
    injected fault, a lost page): the retryable class of
    :class:`repro.reliability.retry.RetryPolicy`."""


class IntegrityError(AmalurError):
    """Data failed a checksum or structural validation (torn spill write,
    corrupt checkpoint segment). Never blindly retryable — the corrupted
    artifact must be rebuilt from its source."""


class PoisonTaskError(AmalurError):
    """A parallel task kept failing after every retry attempt; carries the
    originating site and block index so the failing unit of work is
    identifiable from the message alone."""

    def __init__(self, message: str, site: str = "", index: int = -1):
        super().__init__(message)
        self.site = site
        self.index = index


class CheckpointError(AmalurError):
    """Raised for invalid checkpoint layout, lookup or restore requests."""


class ServiceError(AmalurError):
    """Base class for online-serving failures (:mod:`repro.serving`)."""


class RequestTimeout(ServiceError):
    """Raised when a serving request misses its per-request deadline."""


class CapacityExceeded(ServiceError):
    """Raised when the service rejects a request: full queue or row cap."""


class StaleDatasetError(ServiceError):
    """Raised when a resident dataset is too stale to serve the request
    (accumulated deltas passed the staleness threshold and automatic
    rebuild is disabled, the request pinned an outdated version, or a
    rebuild failed and the session degraded to serving its last good
    snapshot)."""


class CircuitOpenError(ServiceError):
    """Raised when a session's circuit breaker is open: repeated handler
    failures tripped it, and requests are rejected immediately until the
    cool-down elapses and a half-open probe succeeds."""

"""The request-serving front end: worker pool over resident sessions.

:class:`AmalurService` owns a set of named :class:`DatasetSession`\\ s and
executes predict / train / delta requests on a fixed pool of worker
threads behind a bounded queue:

* a full queue rejects immediately with
  :class:`~repro.exceptions.CapacityExceeded` (graceful back-pressure, no
  unbounded buffering);
* each request carries an optional deadline — the *caller* stops waiting
  with :class:`~repro.exceptions.RequestTimeout`; the worker still
  finishes the (non-cancellable) computation, keeping session state
  consistent;
* a per-request row cap bounds the target rows a single predict may
  touch, rejecting oversized requests at submit time;
* every request runs inside a ``serving.request`` telemetry span with
  queue-depth gauges and latency histograms, so one
  :func:`repro.telemetry.run_report` covers the whole mixed workload.

Sessions serialize mutations internally and publish immutable snapshots,
so any number of predict requests run concurrently with at most one
in-flight mutation per session.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro import telemetry as _telemetry
from repro.exceptions import CapacityExceeded, RequestTimeout, ServiceError
from repro.reliability import faults as _faults
from repro.reliability.breaker import CircuitBreaker
from repro.serving.session import DatasetSession, SessionModel
from repro.system.requests import (
    DeltaBatch,
    PredictRequest,
    ServiceResult,
    TrainRequest,
)

_SENTINEL = object()


class AmalurService:
    """A long-lived serving endpoint over resident integrated datasets.

    Parameters
    ----------
    n_workers:
        Worker threads draining the request queue.
    max_queue:
        Bound on queued (not yet running) requests; a full queue raises
        :class:`CapacityExceeded` instead of buffering without limit.
    default_timeout:
        Seconds a caller waits for a result when the request carries no
        timeout of its own (``None`` waits forever).
    max_rows_per_request:
        Upper bound on target rows one predict may span; larger requests
        are rejected at submit time with :class:`CapacityExceeded`.
    breaker_threshold / breaker_reset:
        Per-session circuit breaker: after ``breaker_threshold``
        consecutive handler failures the session's requests are rejected
        with :class:`~repro.exceptions.CircuitOpenError` for
        ``breaker_reset`` seconds, then a single probe is admitted.
    shed_threshold:
        Load shedding for predict requests, as a fraction of
        ``max_queue``: a predict submitted while the queue holds at
        least ``shed_threshold x max_queue`` entries is rejected with
        :class:`CapacityExceeded`, preserving headroom for mutations.
        The default ``1.0`` sheds only at a full queue — exactly the
        legacy back-pressure behavior.
    """

    def __init__(
        self,
        n_workers: int = 4,
        max_queue: int = 64,
        default_timeout: Optional[float] = None,
        max_rows_per_request: Optional[int] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 30.0,
        shed_threshold: float = 1.0,
    ):
        if n_workers < 1:
            raise ServiceError("a service needs at least one worker")
        if not (0.0 < shed_threshold <= 1.0):
            raise ServiceError(
                f"shed_threshold must be in (0, 1], got {shed_threshold}"
            )
        self.default_timeout = default_timeout
        self.max_rows_per_request = max_rows_per_request
        self.shed_threshold = float(shed_threshold)
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_reset = float(breaker_reset)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._sessions: Dict[str, DatasetSession] = {}
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self._request_ids = itertools.count(1)
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"amalur-serve-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- session registry -----------------------------------------------------------------
    def register_session(self, name: str, session: DatasetSession) -> DatasetSession:
        self._sessions[name] = session
        return session

    def session(self, name: str) -> DatasetSession:
        session = self._sessions.get(name)
        if session is None:
            raise ServiceError(
                f"no session named {name!r}; registered: {sorted(self._sessions)}"
            )
        return session

    @property
    def sessions(self) -> Dict[str, DatasetSession]:
        return dict(self._sessions)

    # -- public request API ----------------------------------------------------------------
    def predict(
        self, session_name: str, request: Optional[PredictRequest] = None
    ) -> ServiceResult:
        """Run a predict request on the pool; blocks for the result."""
        request = request or PredictRequest()
        session = self.session(session_name)
        self._check_row_cap(session, request)
        request_id, future = self._submit(
            "predict", session_name, lambda: session.predict(request)
        )
        return self._await(request_id, future, request.timeout)

    def train(
        self, session_name: str, request: Optional[TrainRequest] = None
    ) -> ServiceResult:
        """Run a train request on the pool; blocks for the result."""
        request = request or TrainRequest()
        session = self.session(session_name)
        request_id, future = self._submit(
            "train", session_name, lambda: session.train(request)
        )
        return self._await(request_id, future, request.timeout)

    def apply_delta(
        self, session_name: str, batch: DeltaBatch, timeout: Optional[float] = None
    ) -> ServiceResult:
        """Apply a delta batch through the pool; blocks for the result."""
        session = self.session(session_name)
        request_id, future = self._submit(
            "delta", session_name, lambda: session.apply_delta(batch)
        )
        return self._await(request_id, future, timeout)

    def close(self) -> None:
        """Drain the queue and stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "AmalurService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------------------------
    def breaker(self, session_name: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one session."""
        breaker = self._breakers.get(session_name)
        if breaker is None:
            with self._breaker_lock:
                breaker = self._breakers.get(session_name)
                if breaker is None:
                    breaker = CircuitBreaker(
                        failure_threshold=self._breaker_threshold,
                        reset_timeout=self._breaker_reset,
                        name=session_name,
                    )
                    self._breakers[session_name] = breaker
        return breaker

    def _check_row_cap(self, session: DatasetSession, request: PredictRequest) -> None:
        if self.max_rows_per_request is None:
            return
        if request.row_range is not None:
            span = int(request.row_range[1]) - int(request.row_range[0])
        else:
            span = session.n_target_rows
        if span > self.max_rows_per_request:
            if _telemetry.ENABLED:
                _telemetry.counter_add("serving.rejected")
            raise CapacityExceeded(
                f"request spans {span} rows, cap is {self.max_rows_per_request}"
            )

    def _submit(
        self, kind: str, session_name: str, fn: Callable[[], object]
    ) -> Tuple[int, Future]:
        """Enqueue a request; never blocks — a full queue rejects.

        Degradation gates run first: an open circuit rejects the request
        without consuming a queue slot, and predicts are load-shed once
        the queue passes ``shed_threshold`` of its bound (mutations keep
        the remaining headroom so a stressed service can still converge).
        """
        if self._closed:
            raise ServiceError("service is closed")
        self.breaker(session_name).before_request()
        if kind == "predict" and self._queue.maxsize > 0:
            depth = self._queue.qsize()
            if depth >= self.shed_threshold * self._queue.maxsize:
                if _telemetry.ENABLED:
                    _telemetry.counter_add("serving.rejected")
                    _telemetry.counter_add("serving.shed")
                raise CapacityExceeded(
                    f"load shed: queue depth {depth} at or past "
                    f"{self.shed_threshold:.0%} of {self._queue.maxsize}"
                )
        request_id = next(self._request_ids)
        future: Future = Future()
        try:
            self._queue.put_nowait((request_id, kind, session_name, fn, future))
        except queue.Full:
            if _telemetry.ENABLED:
                _telemetry.counter_add("serving.rejected")
            raise CapacityExceeded(
                f"request queue is full ({self._queue.maxsize} pending)"
            ) from None
        if _telemetry.ENABLED:
            _telemetry.counter_add("serving.requests")
            _telemetry.gauge_set("serving.queue_depth", float(self._queue.qsize()))
        return request_id, future

    def _await(
        self, request_id: int, future: Future, timeout: Optional[float]
    ) -> ServiceResult:
        effective = timeout if timeout is not None else self.default_timeout
        try:
            return future.result(timeout=effective)
        except _FutureTimeout:
            if _telemetry.ENABLED:
                _telemetry.counter_add("serving.timeouts")
            raise RequestTimeout(
                f"request {request_id} missed its {effective}s deadline"
            ) from None

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                self._queue.task_done()
                return
            request_id, kind, session_name, fn, future = item
            if _telemetry.ENABLED:
                _telemetry.gauge_set("serving.queue_depth", float(self._queue.qsize()))
            if not future.set_running_or_notify_cancel():
                self._queue.task_done()
                continue
            started = time.perf_counter()
            try:
                with _telemetry.span(
                    "serving.request", request_id=request_id, kind=kind,
                    session=session_name,
                ):
                    _faults.fault_point(
                        "serving.request", kind=kind, session=session_name
                    )
                    value = fn()
                latency = time.perf_counter() - started
                if _telemetry.ENABLED:
                    _telemetry.observe("serving.latency_ms", latency * 1e3)
                self.breaker(session_name).record_success()
                future.set_result(self._wrap(request_id, kind, session_name, value, latency))
            except BaseException as error:  # noqa: BLE001 - delivered to the caller
                if _telemetry.ENABLED:
                    _telemetry.counter_add("serving.errors")
                self.breaker(session_name).record_failure()
                future.set_exception(error)
            finally:
                self._queue.task_done()

    def _wrap(
        self, request_id: int, kind: str, session_name: str, value, latency: float
    ) -> ServiceResult:
        session = self._sessions.get(session_name)
        version = session.version if session is not None else 0
        handle = None
        if isinstance(value, SessionModel):
            handle = value.handle
        elif isinstance(value, dict) and "version" in value:
            version = int(value["version"])
        if isinstance(value, np.ndarray):
            value.setflags(write=False)  # results may fan out to many readers
        return ServiceResult(
            request_id=request_id,
            kind=kind,
            value=value,
            latency_s=latency,
            version=version,
            handle=handle,
        )

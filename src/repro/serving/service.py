"""The request-serving front end: worker pool over resident sessions.

:class:`AmalurService` owns a set of named :class:`DatasetSession`\\ s and
executes predict / train / delta requests on a fixed pool of worker
threads behind a bounded queue:

* a full queue rejects immediately with
  :class:`~repro.exceptions.CapacityExceeded` (graceful back-pressure, no
  unbounded buffering);
* each request carries an optional deadline — the *caller* stops waiting
  with :class:`~repro.exceptions.RequestTimeout`; the worker still
  finishes the (non-cancellable) computation, keeping session state
  consistent;
* a per-request row cap bounds the target rows a single predict may
  touch, rejecting oversized requests at submit time;
* every request runs inside a ``serving.request`` telemetry span with
  queue-depth gauges and latency histograms, so one
  :func:`repro.telemetry.run_report` covers the whole mixed workload;
* independent of any offline telemetry session, the *live* tier
  (:mod:`repro.telemetry.live`) keeps per-session SLO trackers — request
  rate, windowed latency quantiles and per-failure-mode ratios — updated
  on every request outcome behind a single ``ENABLED`` branch, and
  ``metrics_port=`` starts an OpenMetrics ``/metrics`` + ``/health``
  endpoint (:class:`repro.telemetry.exporter.MetricsServer`) that is safe
  to scrape concurrently with traffic;
* while a :mod:`repro.telemetry.flight` recorder is active, failures feed
  its event ring, and an :class:`~repro.exceptions.IntegrityError`
  escaping a handler triggers a post-mortem dump.

Sessions serialize mutations internally and publish immutable snapshots,
so any number of predict requests run concurrently with at most one
in-flight mutation per session.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro import telemetry as _telemetry
from repro.exceptions import (
    CapacityExceeded,
    CircuitOpenError,
    IntegrityError,
    RequestTimeout,
    ServiceError,
)
from repro.reliability import faults as _faults
from repro.reliability.breaker import CircuitBreaker
from repro.telemetry import exporter as _exporter
from repro.telemetry import flight as _flight
from repro.telemetry import live as _live
from repro.serving.session import DatasetSession, SessionModel
from repro.system.requests import (
    DeltaBatch,
    PredictRequest,
    ServiceResult,
    TrainRequest,
)

_SENTINEL = object()


class AmalurService:
    """A long-lived serving endpoint over resident integrated datasets.

    Parameters
    ----------
    n_workers:
        Worker threads draining the request queue.
    max_queue:
        Bound on queued (not yet running) requests; a full queue raises
        :class:`CapacityExceeded` instead of buffering without limit.
    default_timeout:
        Seconds a caller waits for a result when the request carries no
        timeout of its own (``None`` waits forever).
    max_rows_per_request:
        Upper bound on target rows one predict may span; larger requests
        are rejected at submit time with :class:`CapacityExceeded`.
    breaker_threshold / breaker_reset:
        Per-session circuit breaker: after ``breaker_threshold``
        consecutive handler failures the session's requests are rejected
        with :class:`~repro.exceptions.CircuitOpenError` for
        ``breaker_reset`` seconds, then a single probe is admitted.
    shed_threshold:
        Load shedding for predict requests, as a fraction of
        ``max_queue``: a predict submitted while the queue holds at
        least ``shed_threshold x max_queue`` entries is rejected with
        :class:`CapacityExceeded`, preserving headroom for mutations.
        The default ``1.0`` sheds only at a full queue — exactly the
        legacy back-pressure behavior.
    metrics_port:
        When not ``None``, serve OpenMetrics at
        ``http://{metrics_host}:{metrics_port}/metrics`` (plus
        ``/health``) for the service's lifetime. Port ``0`` binds an
        ephemeral port — read it back from :attr:`metrics_port`.
    slo_window_s:
        Rolling-window width of the live SLO trackers (rates and latency
        quantiles cover roughly the last ``slo_window_s`` seconds).
    """

    def __init__(
        self,
        n_workers: int = 4,
        max_queue: int = 64,
        default_timeout: Optional[float] = None,
        max_rows_per_request: Optional[int] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 30.0,
        shed_threshold: float = 1.0,
        metrics_port: Optional[int] = None,
        metrics_host: str = "127.0.0.1",
        slo_window_s: float = 60.0,
    ):
        if n_workers < 1:
            raise ServiceError("a service needs at least one worker")
        if not (0.0 < shed_threshold <= 1.0):
            raise ServiceError(
                f"shed_threshold must be in (0, 1], got {shed_threshold}"
            )
        self.default_timeout = default_timeout
        self.max_rows_per_request = max_rows_per_request
        self.shed_threshold = float(shed_threshold)
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_reset = float(breaker_reset)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._sessions: Dict[str, DatasetSession] = {}
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self._request_ids = itertools.count(1)
        self._closed = False
        self.slo_window_s = float(slo_window_s)
        self._slos: Dict[str, _live.SloTracker] = {}
        self._slo_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"amalur-serve-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()
        self._metrics_server: Optional[_exporter.MetricsServer] = None
        if metrics_port is not None:
            self._metrics_server = _exporter.MetricsServer(
                self.openmetrics,
                self.health,
                host=metrics_host,
                port=metrics_port,
            )

    # -- session registry -----------------------------------------------------------------
    def register_session(self, name: str, session: DatasetSession) -> DatasetSession:
        self._sessions[name] = session
        return session

    def session(self, name: str) -> DatasetSession:
        session = self._sessions.get(name)
        if session is None:
            raise ServiceError(
                f"no session named {name!r}; registered: {sorted(self._sessions)}"
            )
        return session

    @property
    def sessions(self) -> Dict[str, DatasetSession]:
        return dict(self._sessions)

    # -- public request API ----------------------------------------------------------------
    def predict(
        self, session_name: str, request: Optional[PredictRequest] = None
    ) -> ServiceResult:
        """Run a predict request on the pool; blocks for the result."""
        request = request or PredictRequest()
        session = self.session(session_name)
        self._check_row_cap(session_name, session, request)
        request_id, future = self._submit(
            "predict", session_name, lambda: session.predict(request)
        )
        return self._await(request_id, future, request.timeout, "predict", session_name)

    def train(
        self, session_name: str, request: Optional[TrainRequest] = None
    ) -> ServiceResult:
        """Run a train request on the pool; blocks for the result."""
        request = request or TrainRequest()
        session = self.session(session_name)
        request_id, future = self._submit(
            "train", session_name, lambda: session.train(request)
        )
        return self._await(request_id, future, request.timeout, "train", session_name)

    def apply_delta(
        self, session_name: str, batch: DeltaBatch, timeout: Optional[float] = None
    ) -> ServiceResult:
        """Apply a delta batch through the pool; blocks for the result."""
        session = self.session(session_name)
        request_id, future = self._submit(
            "delta", session_name, lambda: session.apply_delta(batch)
        )
        return self._await(request_id, future, timeout, "delta", session_name)

    def close(self) -> None:
        """Drain the queue and stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join()
        if self._metrics_server is not None:
            self._metrics_server.stop()
            self._metrics_server = None

    def __enter__(self) -> "AmalurService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- live observability surface ----------------------------------------------------------
    @property
    def metrics_port(self) -> Optional[int]:
        """The bound metrics port, or ``None`` when no endpoint runs."""
        server = self._metrics_server
        return server.port if server is not None else None

    def metrics_url(self, path: str = "/metrics") -> str:
        server = self._metrics_server
        if server is None:
            raise ServiceError("service was created without metrics_port")
        return server.url(path)

    def slo_snapshots(self) -> list:
        """One live SLO snapshot dict per session that has seen traffic."""
        with self._slo_lock:
            trackers = list(self._slos.values())
        return [tracker.snapshot() for tracker in trackers]

    def breaker_states(self) -> Dict[str, str]:
        with self._breaker_lock:
            breakers = list(self._breakers.items())
        return {name: breaker.state for name, breaker in breakers}

    def openmetrics(self) -> str:
        """One OpenMetrics exposition of the service's current state.

        Covers the live SLO trackers, queue depth, per-session dataset
        state, breaker states and — when an offline telemetry session is
        enabled — every counter/gauge/histogram of its registry. Each
        instrument snapshots under its own lock, so this is safe to call
        (and the endpoint safe to scrape) concurrently with traffic.
        """
        families = _exporter.slo_families(self.slo_snapshots())
        families.append(
            _exporter.MetricFamily(
                "repro_serving_queue_depth", "gauge",
                "Requests queued but not yet running.",
            ).add(self._queue.qsize())
        )
        state_codes = {"closed": 0.0, "half_open": 1.0, "open": 2.0}
        breakers = _exporter.MetricFamily(
            "repro_breaker_state", "gauge",
            "Circuit state per session: 0 closed, 1 half-open, 2 open.",
        )
        for name, state in sorted(self.breaker_states().items()):
            breakers.add(state_codes.get(state, -1.0), session=name)
        families.append(breakers)
        version = _exporter.MetricFamily(
            "repro_session_dataset_version", "gauge",
            "Published dataset version per session.",
        )
        rows = _exporter.MetricFamily("repro_session_target_rows", "gauge")
        staleness = _exporter.MetricFamily(
            "repro_session_staleness", "gauge",
            "Fraction of target rows touched since the last rebuild.",
        )
        degraded = _exporter.MetricFamily(
            "repro_session_degraded", "gauge",
            "1 while the session serves a stale snapshot after a failed rebuild.",
        )
        for name, session in sorted(self._sessions.items()):
            version.add(session.version, session=name)
            rows.add(session.n_target_rows, session=name)
            staleness.add(session.staleness, session=name)
            degraded.add(1.0 if session.degraded else 0.0, session=name)
        families.extend([version, rows, staleness, degraded])
        telemetry_session = _telemetry.active_session()
        if telemetry_session is not None:
            families.extend(_exporter.registry_families(telemetry_session.metrics))
        return _exporter.render(families)

    def health(self) -> Dict[str, object]:
        """The ``/health`` payload: ``status`` is ``"ok"`` unless the
        service is closed, a session is degraded or a breaker is open."""
        breakers = self.breaker_states()
        sessions = {
            name: session.stats() for name, session in sorted(self._sessions.items())
        }
        degraded = sorted(
            name for name, stats in sessions.items() if stats["degraded"]
        )
        open_breakers = sorted(
            name for name, state in breakers.items() if state == "open"
        )
        if self._closed:
            status = "closed"
        elif degraded or open_breakers:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "queue_depth": self._queue.qsize(),
            "sessions": sessions,
            "breakers": breakers,
            "degraded_sessions": degraded,
            "open_breakers": open_breakers,
        }

    # -- internals -------------------------------------------------------------------------
    def breaker(self, session_name: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one session."""
        breaker = self._breakers.get(session_name)
        if breaker is None:
            with self._breaker_lock:
                breaker = self._breakers.get(session_name)
                if breaker is None:
                    breaker = CircuitBreaker(
                        failure_threshold=self._breaker_threshold,
                        reset_timeout=self._breaker_reset,
                        name=session_name,
                    )
                    self._breakers[session_name] = breaker
        return breaker

    def slo(self, session_name: str) -> "_live.SloTracker":
        """The (lazily created) live SLO tracker for one session."""
        tracker = self._slos.get(session_name)
        if tracker is None:
            with self._slo_lock:
                tracker = self._slos.get(session_name)
                if tracker is None:
                    tracker = _live.SloTracker(
                        session_name, window_s=self.slo_window_s
                    )
                    self._slos[session_name] = tracker
        return tracker

    def _record_outcome(
        self, session_name: str, outcome: str, latency_s: Optional[float] = None
    ) -> None:
        if _live.ENABLED:
            self.slo(session_name).record(outcome, latency_s)

    def _check_row_cap(
        self, session_name: str, session: DatasetSession, request: PredictRequest
    ) -> None:
        if self.max_rows_per_request is None:
            return
        if request.row_range is not None:
            span = int(request.row_range[1]) - int(request.row_range[0])
        else:
            span = session.n_target_rows
        if span > self.max_rows_per_request:
            if _telemetry.ENABLED:
                _telemetry.counter_add("serving.rejected")
            self._record_outcome(session_name, "rejected")
            raise CapacityExceeded(
                f"request spans {span} rows, cap is {self.max_rows_per_request}"
            )

    def _submit(
        self, kind: str, session_name: str, fn: Callable[[], object]
    ) -> Tuple[int, Future]:
        """Enqueue a request; never blocks — a full queue rejects.

        Degradation gates run first: an open circuit rejects the request
        without consuming a queue slot, and predicts are load-shed once
        the queue passes ``shed_threshold`` of its bound (mutations keep
        the remaining headroom so a stressed service can still converge).
        """
        if self._closed:
            raise ServiceError("service is closed")
        try:
            self.breaker(session_name).before_request()
        except CircuitOpenError:
            self._record_outcome(session_name, "breaker_open")
            if _flight.ACTIVE:
                _flight.record_event(
                    "warning", "serving.breaker_rejected",
                    session=session_name, request_kind=kind,
                )
            raise
        if kind == "predict" and self._queue.maxsize > 0:
            depth = self._queue.qsize()
            if depth >= self.shed_threshold * self._queue.maxsize:
                if _telemetry.ENABLED:
                    _telemetry.counter_add("serving.rejected")
                    _telemetry.counter_add("serving.shed")
                self._record_outcome(session_name, "shed")
                raise CapacityExceeded(
                    f"load shed: queue depth {depth} at or past "
                    f"{self.shed_threshold:.0%} of {self._queue.maxsize}"
                )
        request_id = next(self._request_ids)
        future: Future = Future()
        try:
            self._queue.put_nowait((request_id, kind, session_name, fn, future))
        except queue.Full:
            if _telemetry.ENABLED:
                _telemetry.counter_add("serving.rejected")
            self._record_outcome(session_name, "rejected")
            raise CapacityExceeded(
                f"request queue is full ({self._queue.maxsize} pending)"
            ) from None
        if _telemetry.ENABLED:
            _telemetry.counter_add("serving.requests")
            _telemetry.gauge_set("serving.queue_depth", float(self._queue.qsize()))
        return request_id, future

    def _await(
        self,
        request_id: int,
        future: Future,
        timeout: Optional[float],
        kind: str,
        session_name: str,
    ) -> ServiceResult:
        effective = timeout if timeout is not None else self.default_timeout
        try:
            return future.result(timeout=effective)
        except _FutureTimeout:
            if _telemetry.ENABLED:
                _telemetry.counter_add("serving.timeouts")
            self._record_outcome(session_name, "timeout")
            if _flight.ACTIVE:
                _flight.record_event(
                    "warning", "serving.timeout", request_id=request_id,
                    request_kind=kind, session=session_name, deadline_s=effective,
                )
            raise RequestTimeout(
                f"request {request_id} missed its {effective}s deadline"
            ) from None

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                self._queue.task_done()
                return
            request_id, kind, session_name, fn, future = item
            if _telemetry.ENABLED:
                _telemetry.gauge_set("serving.queue_depth", float(self._queue.qsize()))
            if not future.set_running_or_notify_cancel():
                self._queue.task_done()
                continue
            started = time.perf_counter()
            try:
                with _telemetry.span(
                    "serving.request", request_id=request_id, kind=kind,
                    session=session_name,
                ):
                    _faults.fault_point(
                        "serving.request", kind=kind, session=session_name
                    )
                    value = fn()
                latency = time.perf_counter() - started
                if _telemetry.ENABLED:
                    _telemetry.observe("serving.latency_ms", latency * 1e3)
                self._record_outcome(session_name, "ok", latency)
                self.breaker(session_name).record_success()
                future.set_result(self._wrap(request_id, kind, session_name, value, latency))
            except BaseException as error:  # noqa: BLE001 - delivered to the caller
                try:
                    # Observability bookkeeping must never kill a worker: a
                    # dying worker would leave the future unset and hang the
                    # caller forever.
                    if _telemetry.ENABLED:
                        _telemetry.counter_add("serving.errors")
                    self._record_outcome(
                        session_name, "error", time.perf_counter() - started
                    )
                    if _flight.ACTIVE:
                        _flight.record_event(
                            "error", "serving.request_failed",
                            request_id=request_id, request_kind=kind,
                            session=session_name,
                            error=type(error).__name__, message=str(error),
                        )
                        if isinstance(error, IntegrityError):
                            # Corruption is never routine: freeze a post-mortem
                            # with the failing request's span still in the ring.
                            _flight.trigger(
                                "integrity_error", request_id=request_id,
                                request_kind=kind, session=session_name,
                                error=str(error),
                            )
                    self.breaker(session_name).record_failure()
                except Exception:  # pragma: no cover - defensive
                    pass
                future.set_exception(error)
            finally:
                self._queue.task_done()

    def _wrap(
        self, request_id: int, kind: str, session_name: str, value, latency: float
    ) -> ServiceResult:
        session = self._sessions.get(session_name)
        version = session.version if session is not None else 0
        handle = None
        if isinstance(value, SessionModel):
            handle = value.handle
        elif isinstance(value, dict) and "version" in value:
            version = int(value["version"])
        if isinstance(value, np.ndarray):
            value.setflags(write=False)  # results may fan out to many readers
        return ServiceResult(
            request_id=request_id,
            kind=kind,
            value=value,
            latency_s=latency,
            version=version,
            handle=handle,
        )

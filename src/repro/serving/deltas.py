"""Columnar delta application against immutable source tables.

:class:`~repro.relational.Table` storage is immutable; a delta batch
therefore never mutates a table but derives a new one sharing every
untouched column array. Values arrive untyped (Python lists, numpy
arrays) and are coerced through the same
:func:`repro.relational.types.coerce_column` path the table constructor
uses, so a delta-extended table is indistinguishable from one built from
scratch — the property the serving session's rebuild-parity guarantees
rest on.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ServiceError
from repro.relational.table import Table
from repro.relational.types import NULL, coerce_column
from repro.system.requests import DeltaBatch


def coerce_delta_columns(
    table: Table, rows: Dict[str, Sequence], n_rows: int
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Coerce a delta payload to typed storage arrays for the named columns.

    Returns ``(values, valid)`` keyed by column name. Unknown columns are
    rejected; columns absent from ``rows`` are *not* filled here (appends
    fill them with NULL, updates leave them untouched).
    """
    values: Dict[str, np.ndarray] = {}
    valid: Dict[str, np.ndarray] = {}
    for name, payload in rows.items():
        if name not in table.schema:
            raise ServiceError(
                f"delta names column {name!r} not in table {table.name!r}"
            )
        if len(payload) != n_rows:
            raise ServiceError(
                f"delta column {name!r} has {len(payload)} values, batch has {n_rows} rows"
            )
        col_values, col_valid = coerce_column(payload, table.schema[name].dtype)
        values[name] = col_values
        valid[name] = col_valid
    return values, valid


def append_rows(table: Table, batch: DeltaBatch) -> Table:
    """A new table with the batch's rows appended (missing columns NULL)."""
    n_new = batch.n_rows
    values, valid = coerce_delta_columns(table, batch.rows, n_new)
    data: Dict[str, np.ndarray] = {}
    mask: Dict[str, np.ndarray] = {}
    for column in table.schema:
        name = column.name
        if name in values:
            new_values, new_valid = values[name], valid[name]
        else:
            new_values, new_valid = coerce_column([NULL] * n_new, column.dtype)
        data[name] = np.concatenate([table.column_values(name), new_values])
        mask[name] = np.concatenate([table.column_valid(name), new_valid])
    return Table._from_storage(table.name, table.schema, data, mask)


def update_rows(
    table: Table, batch: DeltaBatch
) -> Tuple[Table, Dict[str, np.ndarray], Dict[str, np.ndarray], bool]:
    """Apply an update batch; returns the new table plus change evidence.

    Returns ``(new_table, new_values, new_valid, validity_changed)`` where
    ``new_values``/``new_valid`` hold the coerced replacement arrays per
    updated column and ``validity_changed`` reports whether any updated
    cell flipped between NULL and non-NULL (the serving session falls back
    to a rebuild in that case — validity drives the redundancy masks).
    """
    indices = np.asarray(batch.row_indices, dtype=np.int64)
    if indices.size and (indices.min() < 0 or indices.max() >= table.n_rows):
        raise ServiceError(
            f"update indices out of range for table {table.name!r} "
            f"({table.n_rows} rows)"
        )
    values, valid = coerce_delta_columns(table, batch.rows, int(indices.size))
    validity_changed = False
    data: Dict[str, np.ndarray] = {}
    mask: Dict[str, np.ndarray] = {}
    for column in table.schema:
        name = column.name
        if name in values:
            col_values = table.column_values(name).copy()
            col_valid = table.column_valid(name).copy()
            if not np.array_equal(col_valid[indices], valid[name]):
                validity_changed = True
            col_values[indices] = values[name]
            col_valid[indices] = valid[name]
            data[name] = col_values
            mask[name] = col_valid
        else:
            data[name] = table.column_values(name)
            mask[name] = table.column_valid(name)
    swapped = Table._from_storage(table.name, table.schema, data, mask)
    return swapped, values, valid, validity_changed


def delete_rows(table: Table, row_indices: Optional[Sequence[int]]) -> Table:
    """A new table without the named rows (order of survivors preserved)."""
    indices = np.asarray(row_indices, dtype=np.int64)
    if indices.size and (indices.min() < 0 or indices.max() >= table.n_rows):
        raise ServiceError(
            f"delete indices out of range for table {table.name!r} "
            f"({table.n_rows} rows)"
        )
    keep = np.setdiff1d(np.arange(table.n_rows, dtype=np.int64), indices)
    return table.take(keep)

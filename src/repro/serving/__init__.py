"""Online serving: resident sessions, incremental maintenance, worker pool.

The serving layer keeps integrated datasets resident across requests
(:class:`DatasetSession`), folds source-table deltas into the factorized
representation incrementally instead of re-integrating from scratch, and
fronts everything with a bounded worker pool (:class:`AmalurService`)
speaking the typed request objects from :mod:`repro.system.requests`.
"""

from repro.serving.deltas import append_rows, delete_rows, update_rows
from repro.serving.service import AmalurService
from repro.serving.session import DatasetSession, SessionModel

__all__ = [
    "AmalurService",
    "DatasetSession",
    "SessionModel",
    "append_rows",
    "delete_rows",
    "update_rows",
]

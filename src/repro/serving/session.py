"""Long-lived dataset sessions: resident factors, incremental maintenance.

A :class:`DatasetSession` keeps one :class:`IntegratedDataset` resident
together with its compiled :class:`~repro.factorized.AmalurMatrix` (operator
plans, Gram cache) and serves predict/train requests against it while the
underlying source tables receive :class:`~repro.system.requests.DeltaBatch`
mutations.

Incremental maintenance
-----------------------
Deltas are folded into the factorized representation without re-running
schema matching / entity resolution / ``integrate_tables`` whenever the
scenario's target-row ordering allows it:

* appended source rows extend ``D_k`` and ``CI_k`` through growable
  buffers, with new target rows appended at the end of the target order
  and join fill-ins flipping ``CI_k`` entries from ``-1`` to the matched
  source row;
* the redundancy complement grows by exactly the overlap cells the new
  rows introduce;
* the Gram matrix ``TᵀT`` and the column sums are maintained by rank-k
  updates (``Gram += VᵀV`` for appended target rows, ``Gram += V_newᵀV_new
  − V_oldᵀV_old`` for filled/updated ones) and seeded into the published
  matrix's :class:`~repro.factorized.operator_plan.GramCache`, so the next
  normal-equation solve is a cache hit.

Join matching mirrors ``KeyBasedResolver.resolve_index`` exactly (the
greedy 1:1 hash join: the k-th left occurrence of a key pairs with the
k-th right occurrence; NULL keys never match) via per-key occurrence
lists, so an incrementally maintained session is bit-compatible with a
from-scratch rebuild — the parity tests assert ≤1e-8 agreement.

Deltas the incremental rules cannot express (deletes, key/validity
changes, target-order-breaking appends) and sessions past their staleness
threshold fall back to a full rebuild (or raise
:class:`~repro.exceptions.StaleDatasetError` when ``auto_rebuild`` is
off).

Concurrency
-----------
Mutations serialize on one lock and publish a fresh immutable
``_SessionState`` (dataset, matrix, blocked feature view, version) with a
single attribute store; readers (``predict``) grab the current state once
and never lock. Published states stay internally consistent because the
growable buffers never mutate cells a published view can see: appends
write beyond every published length and in-place updates copy-on-write
the whole buffer first.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro import telemetry as _telemetry
from repro.exceptions import ServiceError, StaleDatasetError
from repro.telemetry import flight as _flight
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning.linear_regression import LinearRegression
from repro.learning.logistic_regression import LogisticRegression
from repro.matrices.builder import (
    IntegratedDataset,
    integrate_tables,
    replace_factor_arrays,
    target_row_values,
)
from repro.matrices.redundancy_matrix import RedundancyMatrix
from repro.metadata.entity_resolution import KeyBasedResolver, resolve_entities
from repro.metadata.mappings import ScenarioType
from repro.metadata.schema_matching import match_schemas
from repro.relational.table import Table
from repro.serving.deltas import append_rows, delete_rows, update_rows
from repro.system.plan import ModelHandle, ModelSpec
from repro.system.requests import (
    DeltaBatch,
    IntegrationConfig,
    PredictRequest,
    TrainRequest,
)


class _GrowBuffer:
    """A growable array whose published views never observe later writes.

    ``view()`` returns the live prefix; consumers (published factors)
    keep such views across delta batches. Safety invariants:

    * ``append`` writes past every published length (and reallocates when
      capacity runs out, leaving old allocations to the old views);
    * ``set_rows`` copy-on-writes the backing allocation before touching
      rows a published view can see.
    """

    __slots__ = ("_buf", "_n")

    def __init__(self, initial: np.ndarray):
        self._buf = np.array(initial)  # own writable copy
        self._n = int(initial.shape[0])

    def __len__(self) -> int:
        return self._n

    def view(self) -> np.ndarray:
        return self._buf[: self._n]

    def append(self, rows: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=self._buf.dtype)
        need = self._n + rows.shape[0]
        if need > self._buf.shape[0]:
            capacity = max(need, 2 * self._buf.shape[0], 8)
            grown = np.empty((capacity,) + self._buf.shape[1:], dtype=self._buf.dtype)
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        self._buf[self._n : need] = rows
        self._n = need

    def set_rows(self, indices: np.ndarray, rows: np.ndarray) -> None:
        fresh = self._buf.copy()
        fresh[np.asarray(indices, dtype=np.int64)] = rows
        self._buf = fresh


@dataclass
class SessionModel:
    """A model trained inside a session: weights plus provenance."""

    handle: ModelHandle
    task: str
    coef_: np.ndarray
    intercept_: float
    version: int
    solver: str = "normal"
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.handle.name


class _SessionState:
    """One immutable published snapshot of the session's dataset."""

    __slots__ = ("dataset", "matrix", "features", "colsums", "version")

    def __init__(self, dataset, matrix, features, colsums, version):
        self.dataset = dataset
        self.matrix = matrix
        self.features = features  # BlockedMatrixView over the feature columns
        self.colsums = colsums  # per-target-column sums, label included
        self.version = version


class DatasetSession:
    """A resident integrated dataset served under delta maintenance.

    Parameters
    ----------
    base, other:
        The two source tables (``config.base`` / ``config.other`` must name
        them).
    config:
        The :class:`~repro.system.requests.IntegrationConfig` describing
        the mediated schema and scenario.
    column_matches:
        Column correspondences between the sources; matched automatically
        when omitted.
    staleness_threshold:
        Fraction of target rows that may be touched by incremental deltas
        before the session forces a rebuild (factor buffers and complement
        coordinates accrete; a rebuild re-compacts them).
    auto_rebuild:
        When ``False``, deltas that need a rebuild (unsupported forms or
        staleness overflow) raise :class:`StaleDatasetError` instead.
    serve_stale_on_failure:
        Graceful degradation: when a delta-driven rebuild *fails*, the
        session rolls its tables back, keeps serving the last good
        published snapshot (predict is lock-free on that state), marks
        itself ``degraded``, and rejects the delta with
        :class:`StaleDatasetError` chained from the rebuild error. With
        ``False`` the rebuild error propagates as-is (tables still
        rolled back).
    """

    def __init__(
        self,
        base: Table,
        other: Table,
        config: IntegrationConfig,
        column_matches=None,
        matcher=None,
        staleness_threshold: float = 0.25,
        auto_rebuild: bool = True,
        serve_stale_on_failure: bool = True,
    ):
        if base.name != config.base or other.name != config.other:
            raise ServiceError(
                f"config names sources {config.base!r}/{config.other!r}, "
                f"got tables {base.name!r}/{other.name!r}"
            )
        self.config = config
        self.column_matches = (
            list(column_matches)
            if column_matches is not None
            else match_schemas(base, other, matcher=matcher)
        )
        self.staleness_threshold = float(staleness_threshold)
        self.auto_rebuild = bool(auto_rebuild)
        self.serve_stale_on_failure = bool(serve_stale_on_failure)
        self._degraded = False
        self._base_name = base.name
        self._other_name = other.name
        self._tables: Dict[str, Table] = {base.name: base, other.name: other}
        shared_keys = [
            column.name for column in base.schema.key_columns if column.name in other.schema
        ]
        self._key_pairs: Optional[List[Tuple[str, str]]] = (
            [(k, k) for k in shared_keys] if shared_keys else None
        )
        self._lock = threading.RLock()
        self._models: Dict[str, SessionModel] = {}
        self._version = 0
        self._changed_rows = 0
        self.deltas_applied = 0
        self.incremental_applied = 0
        self.rebuilds = 0
        self._rebuild()
        self.rebuilds = 0  # the initial build is not a delta-driven rebuild

    # -- public surface -----------------------------------------------------------------
    @property
    def version(self) -> int:
        return self._state.version

    @property
    def n_target_rows(self) -> int:
        return self._state.dataset.n_target_rows

    @property
    def dataset(self) -> IntegratedDataset:
        return self._state.dataset

    @property
    def matrix(self) -> AmalurMatrix:
        return self._state.matrix

    @property
    def staleness(self) -> float:
        """Fraction of target rows touched since the last (re)build."""
        n = self._state.dataset.n_target_rows
        return self._changed_rows / n if n else 0.0

    @property
    def degraded(self) -> bool:
        """True while the session serves a stale snapshot because its last
        rebuild failed; cleared by the next successful rebuild."""
        return self._degraded

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise ServiceError(f"session holds no table named {name!r}")
        return self._tables[name]

    def model(self, name: str = "default") -> SessionModel:
        model = self._models.get(name)
        if model is None:
            raise ServiceError(f"session has no model named {name!r}")
        return model

    def stats(self) -> Dict[str, float]:
        return {
            "version": self._state.version,
            "n_target_rows": self._state.dataset.n_target_rows,
            "deltas_applied": self.deltas_applied,
            "incremental_applied": self.incremental_applied,
            "rebuilds": self.rebuilds,
            "staleness": self.staleness,
            "degraded": self._degraded,
        }

    def rebuild(self) -> None:
        """Force a full from-scratch rebuild of the resident dataset."""
        with self._lock:
            self._rebuild()

    # -- delta application -----------------------------------------------------------------
    def apply_delta(self, batch: DeltaBatch) -> Dict[str, object]:
        """Fold one delta batch into the resident dataset.

        Returns a summary dict with ``mode`` (``"incremental"`` /
        ``"rebuild"``), the new ``version`` and the row counts involved.
        """
        if batch.table not in self._tables:
            raise ServiceError(
                f"delta targets table {batch.table!r}; session holds "
                f"{sorted(self._tables)}"
            )
        with self._lock:
            with _telemetry.span(
                "serving.delta", table=batch.table, kind=batch.kind, rows=batch.n_rows
            ):
                self.deltas_applied += 1
                if batch.kind == "append":
                    return self._apply_append(batch)
                if batch.kind == "update":
                    return self._apply_update(batch)
                return self._apply_delete(batch)

    # -- training -------------------------------------------------------------------------
    def train(self, request: Optional[TrainRequest] = None) -> SessionModel:
        """Train a model on the resident dataset; weights cached per name."""
        request = request or TrainRequest()
        with self._lock:
            state = self._state
            spec = request.model
            name = request.model_name or "default"
            with _telemetry.span(
                "serving.train", task=spec.task, model=name, version=state.version
            ):
                model = self._fit(state, spec, request, name)
            self._models[name] = model
            return model

    # -- prediction (lock-free readers) ----------------------------------------------------
    def predict(self, request: Optional[PredictRequest] = None) -> np.ndarray:
        """Predict over target rows of the current (or pinned) snapshot."""
        request = request or PredictRequest()
        state = self._state  # one atomic read; the snapshot stays consistent
        if request.version is not None and request.version != state.version:
            raise StaleDatasetError(
                f"request pinned dataset version {request.version}, "
                f"session is at {state.version}"
            )
        model = self.model(request.model_name or "default")
        n_rows = state.dataset.n_target_rows
        start, stop = request.row_range if request.row_range is not None else (0, n_rows)
        if not (0 <= start <= stop <= n_rows):
            raise ServiceError(
                f"row range [{start}, {stop}) outside target rows [0, {n_rows})"
            )
        scores = (
            state.features.lmm_block(model.coef_[:, None], int(start), int(stop))[:, 0]
            + model.intercept_
        )
        if model.task == "classification":
            return 1.0 / (1.0 + np.exp(-scores))
        return scores

    # =====================================================================================
    # internals
    # =====================================================================================

    # -- build / publish -------------------------------------------------------------------
    def _rebuild(self) -> None:
        base = self._tables[self._base_name]
        other = self._tables[self._other_name]
        config = self.config
        with _telemetry.span(
            "serving.rebuild", dataset=config.name, base_rows=base.n_rows,
            other_rows=other.n_rows,
        ):
            if self._key_pairs:
                row_matches = KeyBasedResolver(self._key_pairs).resolve_index(base, other)
            else:
                row_matches = resolve_entities(
                    base, other, column_matches=self.column_matches
                )
            dataset = integrate_tables(
                base=base,
                other=other,
                column_matches=self.column_matches,
                row_matches=row_matches,
                target_columns=config.target_columns,
                scenario=config.scenario,
                label_column=config.label_column,
                name=config.name,
                backend=config.backend,
            )
            self._adopt(dataset)
        self.rebuilds += 1
        self._changed_rows = 0
        self._degraded = False
        if _telemetry.ENABLED:
            _telemetry.counter_add("serving.rebuilds")

    def _adopt(self, dataset: IntegratedDataset) -> None:
        """Reset every maintenance structure from a freshly built dataset."""
        base_factor, other_factor = dataset.factors
        self._base_template = base_factor
        self._other_template = other_factor
        self._base_data = _GrowBuffer(np.array(base_factor.data))
        self._other_data = _GrowBuffer(np.array(other_factor.data))
        self._base_ci = _GrowBuffer(np.asarray(base_factor.indicator.compressed))
        self._other_ci = _GrowBuffer(np.asarray(other_factor.indicator.compressed))
        complement = other_factor.redundancy.to_sparse_complement().tocoo()
        self._comp_rows = _GrowBuffer(np.asarray(complement.row, dtype=np.int64))
        self._comp_cols = _GrowBuffer(np.asarray(complement.col, dtype=np.int64))
        self._rebuild_key_index()
        self._precompute_overlap()
        matrix = AmalurMatrix(dataset)
        self._gram = np.array(matrix.crossprod())  # writable maintained copy
        colsums = matrix.column_sums()
        self._publish(dataset, matrix, colsums)

    def _publish(self, dataset, matrix, colsums) -> _SessionState:
        self._version += 1
        state = _SessionState(
            dataset,
            matrix,
            matrix.blocked(columns=dataset.feature_columns),
            np.array(colsums),
            self._version,
        )
        self._state = state
        if _telemetry.ENABLED:
            _telemetry.gauge_set("serving.dataset_version", float(self._version))
        return state

    def _assemble_incremental(self, n_target: int) -> IntegratedDataset:
        """A new dataset over the current buffer views (zero-copy factors)."""
        n_cols = len(self.config.target_columns)
        base_factor = replace_factor_arrays(
            self._base_template,
            self._base_data.view(),
            self._base_ci.view(),
            n_target,
            RedundancyMatrix.all_ones(self._base_name, n_target, n_cols),
        )
        comp_rows = self._comp_rows.view()
        complement = sparse.csr_matrix(
            (
                np.ones(comp_rows.size, dtype=np.float64),
                (comp_rows, self._comp_cols.view()),
            ),
            shape=(n_target, n_cols),
        )
        other_factor = replace_factor_arrays(
            self._other_template,
            self._other_data.view(),
            self._other_ci.view(),
            n_target,
            RedundancyMatrix.from_complement(
                self._other_name, (n_target, n_cols), complement
            ),
        )
        return IntegratedDataset(
            target_columns=list(self.config.target_columns),
            n_target_rows=n_target,
            factors=[base_factor, other_factor],
            scenario=self.config.scenario,
            label_column=self.config.label_column,
            name=self.config.name,
            backend=self._state.dataset.backend,
        )

    # -- key occurrence index ---------------------------------------------------------------
    def _rebuild_key_index(self) -> None:
        """Per-key ordered row lists mirroring the greedy 1:1 hash join."""
        self._left_by_key: Dict[object, List[int]] = {}
        self._right_by_key: Dict[object, List[int]] = {}
        if not self._key_pairs:
            return
        base = self._tables[self._base_name]
        other = self._tables[self._other_name]
        for row, key in enumerate(self._keys_for(base, True, np.arange(base.n_rows))):
            if key is not None:
                self._left_by_key.setdefault(key, []).append(row)
        for row, key in enumerate(self._keys_for(other, False, np.arange(other.n_rows))):
            if key is not None:
                self._right_by_key.setdefault(key, []).append(row)

    def _keys_for(self, table: Table, is_base: bool, rows: np.ndarray) -> List[object]:
        """Hashable key per row (None when any key cell is NULL)."""
        if not self._key_pairs:
            return [None] * len(rows)
        columns = [pair[0] if is_base else pair[1] for pair in self._key_pairs]
        values = [table.column_values(c) for c in columns]
        valids = [table.column_valid(c) for c in columns]
        keys: List[object] = []
        for row in np.asarray(rows, dtype=np.int64):
            parts = []
            for value_array, valid_array in zip(values, valids):
                if not valid_array[row]:
                    parts = None
                    break
                cell = value_array[row]
                parts.append(cell.item() if isinstance(cell, np.generic) else cell)
            if parts is None:
                keys.append(None)
            else:
                keys.append(parts[0] if len(parts) == 1 else tuple(parts))
        return keys

    def _index_new_rows(self, is_base: bool, rows: np.ndarray, keys: List[object]) -> None:
        index = self._left_by_key if is_base else self._right_by_key
        for row, key in zip(np.asarray(rows, dtype=np.int64), keys):
            if key is not None:
                index.setdefault(key, []).append(int(row))

    def _plan_matches(self, is_base: bool, keys: List[object]) -> np.ndarray:
        """Greedy 1:1 partner per new row (-1 unmatched), dicts untouched.

        Mirrors ``KeyBasedResolver.resolve_index``: the occurrence index of
        a new row on its own side selects the partner at the same index on
        the other side's per-key ordered list.
        """
        own = self._left_by_key if is_base else self._right_by_key
        partner = self._right_by_key if is_base else self._left_by_key
        matches = np.full(len(keys), -1, dtype=np.int64)
        extra: Dict[object, int] = {}
        for position, key in enumerate(keys):
            if key is None:
                continue
            occurrence = len(own.get(key, ())) + extra.get(key, 0)
            extra[key] = extra.get(key, 0) + 1
            candidates = partner.get(key, ())
            if occurrence < len(candidates):
                matches[position] = candidates[occurrence]
        return matches

    # -- overlap (redundancy) bookkeeping ---------------------------------------------------
    def _precompute_overlap(self) -> None:
        """Target positions both sources map, with their source columns."""
        base_mapping = self._base_template.mapping
        other_mapping = self._other_template.mapping
        base_by_target = {
            int(t): self._base_template.source_columns[int(s)]
            for s, t in zip(
                base_mapping.mapped_source_indices(), base_mapping.mapped_target_indices()
            )
        }
        self._overlap: List[Tuple[int, str, str]] = []
        for s, t in zip(
            other_mapping.mapped_source_indices(), other_mapping.mapped_target_indices()
        ):
            if int(t) in base_by_target:
                self._overlap.append(
                    (
                        int(t),
                        base_by_target[int(t)],
                        self._other_template.source_columns[int(s)],
                    )
                )

    def _overlap_cells(
        self, target_rows: np.ndarray, base_rows: np.ndarray, other_rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Complement coordinates for target rows fed by BOTH sources."""
        base = self._tables[self._base_name]
        other = self._tables[self._other_name]
        rows_out: List[np.ndarray] = []
        cols_out: List[np.ndarray] = []
        target_rows = np.asarray(target_rows, dtype=np.int64)
        base_rows = np.asarray(base_rows, dtype=np.int64)
        other_rows = np.asarray(other_rows, dtype=np.int64)
        for position, base_column, other_column in self._overlap:
            both = (
                base.column_valid(base_column)[base_rows]
                & other.column_valid(other_column)[other_rows]
            )
            hit = target_rows[both]
            rows_out.append(hit)
            cols_out.append(np.full(hit.size, position, dtype=np.int64))
        if not rows_out:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(rows_out), np.concatenate(cols_out)

    @staticmethod
    def _matrix_rows(table: Table, columns: Sequence[str], rows: np.ndarray) -> np.ndarray:
        """The ``to_matrix`` encoding (NULL → 0.0) of a subset of rows."""
        rows = np.asarray(rows, dtype=np.int64)
        out = np.zeros((rows.size, len(columns)))
        for index, column in enumerate(columns):
            values = np.asarray(table.column_values(column), dtype=np.float64)
            out[:, index] = np.where(table.column_valid(column)[rows], values[rows], 0.0)
        return out

    # -- fallback --------------------------------------------------------------------------
    def _fallback_rebuild(
        self, new_tables: Dict[str, Table], reason: str
    ) -> Dict[str, object]:
        if not self.auto_rebuild:
            raise StaleDatasetError(
                f"delta requires a full rebuild ({reason}) and auto_rebuild is off"
            )
        previous_tables = dict(self._tables)
        self._tables.update(new_tables)
        try:
            self._rebuild()
        except Exception as error:
            # Roll the tables back so they stay consistent with the still-
            # published snapshot; predict keeps serving the last good state.
            self._tables = previous_tables
            if _telemetry.ENABLED:
                _telemetry.counter_add("serving.rebuild_failures")
            if _flight.ACTIVE:
                # A failed rebuild flips the session into degraded serving —
                # capture the post-mortem while the cause is still in the rings.
                _flight.trigger(
                    "rebuild_failed",
                    dataset=self.config.name,
                    reason=reason,
                    error=f"{type(error).__name__}: {error}",
                    serving_version=self._state.version,
                )
            if not self.serve_stale_on_failure:
                raise
            self._degraded = True
            if _telemetry.ENABLED:
                _telemetry.counter_add("serving.degraded")
            raise StaleDatasetError(
                f"rebuild failed ({reason}): {error}; the delta was rejected "
                f"and the session is serving version {self._state.version} stale"
            ) from error
        return {
            "mode": "rebuild",
            "reason": reason,
            "version": self._version,
            "n_target_rows": self._state.dataset.n_target_rows,
        }

    def _over_staleness(self, n_changed: int) -> bool:
        n_target = self._state.dataset.n_target_rows
        return self._changed_rows + n_changed > self.staleness_threshold * max(n_target, 1)

    # -- appends ---------------------------------------------------------------------------
    def _apply_append(self, batch: DeltaBatch) -> Dict[str, object]:
        table = self._tables[batch.table]
        is_base = batch.table == self._base_name
        new_table = append_rows(table, batch)
        new_rows = np.arange(table.n_rows, new_table.n_rows, dtype=np.int64)
        scenario = self.config.scenario

        if not self._key_pairs:
            # Similarity-resolved sessions: row matches can appear anywhere,
            # so incremental target maintenance is never sound.
            return self._fallback_rebuild(
                {batch.table: new_table}, "similarity-based resolution"
            )

        keys = self._keys_for(new_table, is_base, new_rows)
        matches = self._plan_matches(is_base, keys)

        # -- decide whether the scenario's target order survives an append --
        reason = None
        if is_base:
            if scenario is ScenarioType.UNION:
                reason = "base append inserts before the union's other-rows section"
            elif scenario is ScenarioType.FULL_OUTER_JOIN and bool(
                (self._base_ci.view() < 0).any()
            ):
                reason = "base append behind existing other-only target rows"
        else:
            if scenario is ScenarioType.INNER_JOIN and bool((matches >= 0).any()):
                reason = "inner-join match would insert target rows mid-order"
        if reason is not None:
            return self._fallback_rebuild({batch.table: new_table}, reason)

        # -- derive appended target rows and fill-ins -----------------------
        fill_targets = np.empty(0, dtype=np.int64)
        fill_other = np.empty(0, dtype=np.int64)
        if is_base:
            if scenario is ScenarioType.INNER_JOIN:
                kept = matches >= 0
                append_base, append_other = new_rows[kept], matches[kept]
            else:  # LEFT / FULL_OUTER: every base row becomes a target row
                append_base, append_other = new_rows, matches
        else:
            if scenario is ScenarioType.UNION:
                append_base = np.full(new_rows.size, -1, dtype=np.int64)
                append_other = new_rows
            else:
                matched = matches >= 0
                # Base target rows are the identity prefix under LEFT /
                # FULL_OUTER (rebuilds restore it; incremental appends keep
                # it), so a matched base row *is* its target row.
                fill_targets = matches[matched]
                fill_other = new_rows[matched]
                if scenario is ScenarioType.FULL_OUTER_JOIN:
                    append_base = np.full(
                        int((~matched).sum()), -1, dtype=np.int64
                    )
                    append_other = new_rows[~matched]
                else:  # LEFT: unmatched other rows never reach the target
                    append_base = np.empty(0, dtype=np.int64)
                    append_other = np.empty(0, dtype=np.int64)

        n_appended = int(max(append_base.size, append_other.size))
        n_changed = n_appended + int(fill_targets.size)
        if self._over_staleness(n_changed):
            return self._fallback_rebuild(
                {batch.table: new_table}, "staleness threshold exceeded"
            )

        # -- commit ----------------------------------------------------------
        old_state = self._state
        old_n_target = old_state.dataset.n_target_rows
        v_old = (
            target_row_values(old_state.dataset, fill_targets)
            if fill_targets.size
            else None
        )

        self._tables[batch.table] = new_table
        template = self._base_template if is_base else self._other_template
        data_buffer = self._base_data if is_base else self._other_data
        data_buffer.append(
            self._matrix_rows(new_table, template.source_columns, new_rows)
        )
        self._index_new_rows(is_base, new_rows, keys)

        if fill_targets.size:
            self._other_ci.set_rows(fill_targets, fill_other)
        if n_appended:
            if is_base:
                self._base_ci.append(append_base)
                self._other_ci.append(append_other)
            else:
                self._base_ci.append(append_base)
                self._other_ci.append(append_other)
        new_targets = np.arange(old_n_target, old_n_target + n_appended, dtype=np.int64)

        # Complement growth: appended target rows fed by both sources, plus
        # every fill-in (the other source now shadows base-provided cells).
        if is_base and n_appended:
            covered = append_other >= 0
            rows, cols = self._overlap_cells(
                new_targets[covered], append_base[covered], append_other[covered]
            )
            if rows.size:
                self._comp_rows.append(rows)
                self._comp_cols.append(cols)
        if fill_targets.size:
            rows, cols = self._overlap_cells(fill_targets, fill_targets, fill_other)
            if rows.size:
                self._comp_rows.append(rows)
                self._comp_cols.append(cols)

        dataset = self._assemble_incremental(old_n_target + n_appended)

        # Rank-k statistics maintenance.
        if fill_targets.size:
            v_new = target_row_values(dataset, fill_targets)
            self._gram += v_new.T @ v_new - v_old.T @ v_old
            colsums_delta = v_new.sum(axis=0) - v_old.sum(axis=0)
        else:
            colsums_delta = 0.0
        if n_appended:
            v_app = target_row_values(dataset, new_targets)
            self._gram += v_app.T @ v_app
            colsums_delta = colsums_delta + v_app.sum(axis=0)

        matrix = AmalurMatrix(dataset)
        matrix.gram_cache.seed(self._gram)
        self._publish(dataset, matrix, old_state.colsums + colsums_delta)
        self._changed_rows += n_changed
        self.incremental_applied += 1
        if _telemetry.ENABLED:
            _telemetry.counter_add("serving.incremental_deltas")
        return {
            "mode": "incremental",
            "version": self._version,
            "appended_target_rows": n_appended,
            "filled_target_rows": int(fill_targets.size),
            "n_target_rows": dataset.n_target_rows,
        }

    # -- updates ---------------------------------------------------------------------------
    def _apply_update(self, batch: DeltaBatch) -> Dict[str, object]:
        table = self._tables[batch.table]
        is_base = batch.table == self._base_name
        new_table, values, valid, validity_changed = update_rows(table, batch)

        if not self._key_pairs:
            return self._fallback_rebuild(
                {batch.table: new_table}, "similarity-based resolution"
            )
        key_columns = {p[0] if is_base else p[1] for p in self._key_pairs}
        if key_columns & set(values):
            return self._fallback_rebuild(
                {batch.table: new_table}, "key column updated"
            )
        if validity_changed:
            return self._fallback_rebuild(
                {batch.table: new_table}, "NULL pattern changed"
            )

        template = self._base_template if is_base else self._other_template
        mapped = [c for c in values if c in template.source_columns]
        if not mapped:
            # Only unmapped (non-target) columns changed: the factorized
            # representation is untouched, no new version to publish.
            self._tables[batch.table] = new_table
            return {
                "mode": "incremental",
                "version": self._version,
                "filled_target_rows": 0,
                "appended_target_rows": 0,
                "n_target_rows": self._state.dataset.n_target_rows,
            }

        indices = np.asarray(batch.row_indices, dtype=np.int64)
        ci = (self._base_ci if is_base else self._other_ci).view()
        affected = np.nonzero(np.isin(ci, indices))[0].astype(np.int64)
        if self._over_staleness(affected.size):
            return self._fallback_rebuild(
                {batch.table: new_table}, "staleness threshold exceeded"
            )

        old_state = self._state
        v_old = target_row_values(old_state.dataset, affected)

        self._tables[batch.table] = new_table
        data_buffer = self._base_data if is_base else self._other_data
        block = data_buffer.view()[indices].copy()
        for column in mapped:
            position = template.source_columns.index(column)
            block[:, position] = np.where(
                valid[column], np.asarray(values[column], dtype=np.float64), 0.0
            )
        data_buffer.set_rows(indices, block)

        dataset = self._assemble_incremental(old_state.dataset.n_target_rows)
        v_new = target_row_values(dataset, affected)
        self._gram += v_new.T @ v_new - v_old.T @ v_old
        matrix = AmalurMatrix(dataset)
        matrix.gram_cache.seed(self._gram)
        self._publish(
            dataset, matrix, old_state.colsums + v_new.sum(axis=0) - v_old.sum(axis=0)
        )
        self._changed_rows += int(affected.size)
        self.incremental_applied += 1
        if _telemetry.ENABLED:
            _telemetry.counter_add("serving.incremental_deltas")
        return {
            "mode": "incremental",
            "version": self._version,
            "filled_target_rows": int(affected.size),
            "appended_target_rows": 0,
            "n_target_rows": dataset.n_target_rows,
        }

    # -- deletes ---------------------------------------------------------------------------
    def _apply_delete(self, batch: DeltaBatch) -> Dict[str, object]:
        new_table = delete_rows(self._tables[batch.table], batch.row_indices)
        # Deleting source rows shifts every later row index through CI_k;
        # compacting that incrementally is a rebuild in all but name.
        return self._fallback_rebuild({batch.table: new_table}, "row deletion")

    # -- model fitting ---------------------------------------------------------------------
    def _fit(
        self, state: _SessionState, spec: ModelSpec, request: TrainRequest, name: str
    ) -> SessionModel:
        dataset = state.dataset
        if spec.task not in ("regression", "classification"):
            raise ServiceError(
                f"session training supports regression and classification, "
                f"not {spec.task!r}"
            )
        if dataset.label_column is None:
            raise ServiceError(f"{spec.task} training requires a label column")
        target_columns = dataset.target_columns
        label_index = target_columns.index(dataset.label_column)
        feature_indices = [i for i in range(len(target_columns)) if i != label_index]
        cached = self._models.get(name)
        warm = request.warm_start and cached is not None and cached.task == spec.task

        if spec.task == "regression":
            solver = str(spec.hyperparameters.get("solver", "normal"))
            if solver == "normal":
                return self._fit_normal_from_stats(
                    state, spec, name, label_index, feature_indices
                )
            model = LinearRegression(
                solver="gd",
                learning_rate=spec.learning_rate,
                n_iterations=spec.n_iterations,
                l2_penalty=spec.l2_penalty,
                warm_start=warm,
            )
            if warm:
                model.coef_ = np.array(cached.coef_)
            model.fit(state.matrix.feature_matrix_view(), state.matrix.labels())
            metrics = {
                "mse_loss": model.loss_history_[-1] if model.loss_history_ else float("nan")
            }
            return SessionModel(
                handle=ModelHandle(name=name, task=spec.task, dataset=dataset.name),
                task=spec.task,
                coef_=np.array(model.coef_),
                intercept_=float(model.intercept_),
                version=state.version,
                solver="gd",
                metrics=metrics,
            )

        model = LogisticRegression(
            learning_rate=spec.learning_rate,
            n_iterations=spec.n_iterations,
            l2_penalty=spec.l2_penalty,
            warm_start=warm,
        )
        if warm:
            model.coef_ = np.array(cached.coef_)
            model.intercept_ = float(cached.intercept_)
        model.fit(state.matrix.feature_matrix_view(), state.matrix.labels())
        metrics = {
            "log_loss": model.loss_history_[-1] if model.loss_history_ else float("nan")
        }
        return SessionModel(
            handle=ModelHandle(name=name, task=spec.task, dataset=dataset.name),
            task=spec.task,
            coef_=np.array(model.coef_),
            intercept_=float(model.intercept_),
            version=state.version,
            solver="gd",
            metrics=metrics,
        )

    def _fit_normal_from_stats(
        self,
        state: _SessionState,
        spec: ModelSpec,
        name: str,
        label_index: int,
        feature_indices: List[int],
    ) -> SessionModel:
        """Closed-form normal-equation solve from the maintained statistics.

        Algebraically identical to ``LinearRegression(solver="normal",
        fit_intercept=True)`` on the feature view: with ``ȳ`` the label
        mean, the centered moment is ``Xᵀ(y − ȳ) = Gram[f, l] −
        ȳ·colsums[f]`` — every term read off the maintained full-target
        Gram and column sums, no pass over the data.
        """
        dataset = state.dataset
        gram = state.matrix.crossprod()  # seeded: a cache hit after deltas
        n_rows = dataset.n_target_rows
        if n_rows == 0:
            raise ServiceError("cannot train on an empty target")
        features = np.asarray(feature_indices, dtype=np.intp)
        y_mean = state.colsums[label_index] / n_rows
        moment = gram[features, label_index] - y_mean * state.colsums[features]
        system = gram[np.ix_(features, features)]
        identity = np.eye(features.size)
        if spec.l2_penalty:
            system = system + spec.l2_penalty * identity
        weights = np.linalg.solve(system + 1e-12 * identity, moment)
        return SessionModel(
            handle=ModelHandle(name=name, task="regression", dataset=dataset.name),
            task="regression",
            coef_=weights,
            intercept_=float(y_mean),
            version=state.version,
            solver="normal",
            metrics={},
        )

"""Data silos, a simulated network, and a central orchestrator (paper §II).

The paper's deployment target — geographically distributed silos with a
central orchestrator shipping compiled executables and aggregating results
— is simulated in-process: each :class:`DataSilo` holds its tables and
privacy constraints, every byte that crosses a silo boundary is accounted
by :class:`SimulatedNetwork`, and :class:`Orchestrator` coordinates
factorized execution and materialization across silos.
"""

from repro.silos.silo import DataSilo, PrivacyLevel
from repro.silos.network import SimulatedNetwork, TransferRecord
from repro.silos.orchestrator import Orchestrator

__all__ = [
    "DataSilo",
    "PrivacyLevel",
    "SimulatedNetwork",
    "TransferRecord",
    "Orchestrator",
]

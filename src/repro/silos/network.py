"""A byte-accounted simulated network between silos and the orchestrator.

Wall-clock networking is not simulated with sleeps; instead every transfer
is recorded (who, to whom, how many bytes, what payload) and an estimated
transfer time is derived from configurable bandwidth and latency. The
estimates feed the cost model's transfer term and the federated-learning
communication-overhead benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro import telemetry as _telemetry


@dataclass(frozen=True)
class TransferRecord:
    """One payload crossing a silo boundary."""

    sender: str
    receiver: str
    payload: str
    n_bytes: int

    def estimated_seconds(self, bandwidth_bytes_per_s: float, latency_s: float) -> float:
        return latency_s + self.n_bytes / bandwidth_bytes_per_s


@dataclass
class SimulatedNetwork:
    """Accounts every byte moved between silos / the orchestrator."""

    bandwidth_bytes_per_s: float = 125_000_000.0  # 1 Gbit/s
    latency_s: float = 0.001
    transfers: List[TransferRecord] = field(default_factory=list)

    def send(self, sender: str, receiver: str, payload_name: str, payload) -> TransferRecord:
        """Record a transfer; returns the record. The payload itself is not copied."""
        record = TransferRecord(sender, receiver, payload_name, self._payload_bytes(payload))
        self.transfers.append(record)
        if _telemetry.ENABLED:
            _telemetry.counter_add("network.messages")
            _telemetry.counter_add("network.bytes", float(record.n_bytes))
            _telemetry.counter_add(
                f"network.bytes_sent.{sender}", float(record.n_bytes)
            )
        return record

    @staticmethod
    def _payload_bytes(payload) -> int:
        if payload is None:
            return 0
        if isinstance(payload, np.ndarray):
            return int(payload.nbytes)
        if isinstance(payload, (bytes, bytearray)):
            return len(payload)
        if isinstance(payload, (int, float, bool)):
            return 8
        if isinstance(payload, str):
            return len(payload.encode("utf-8"))
        if isinstance(payload, (list, tuple)):
            return sum(SimulatedNetwork._payload_bytes(item) for item in payload)
        if isinstance(payload, dict):
            return sum(
                SimulatedNetwork._payload_bytes(k) + SimulatedNetwork._payload_bytes(v)
                for k, v in payload.items()
            )
        if hasattr(payload, "nbytes"):
            return int(payload.nbytes)
        if hasattr(payload, "__sizeof__"):
            return int(payload.__sizeof__())
        return 0

    # -- accounting -----------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(record.n_bytes for record in self.transfers)

    @property
    def n_messages(self) -> int:
        return len(self.transfers)

    def total_estimated_seconds(self) -> float:
        return sum(
            record.estimated_seconds(self.bandwidth_bytes_per_s, self.latency_s)
            for record in self.transfers
        )

    def bytes_sent_by(self, sender: str) -> int:
        return sum(r.n_bytes for r in self.transfers if r.sender == sender)

    def bytes_received_by(self, receiver: str) -> int:
        return sum(r.n_bytes for r in self.transfers if r.receiver == receiver)

    def reset(self) -> None:
        self.transfers.clear()

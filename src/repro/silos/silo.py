"""Data silos: local table stores with privacy constraints."""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.exceptions import CatalogError, PrivacyError
from repro.relational.table import Table


class PrivacyLevel(enum.Enum):
    """How data may leave a silo.

    * ``OPEN`` — raw rows may be exported (materialization allowed).
    * ``AGGREGATES_ONLY`` — only aggregated/derived results (e.g. partial
      LMM results, gradients) may leave; raw rows may not. Factorized
      execution is allowed, materialization is not.
    * ``PRIVATE`` — nothing derived from raw values may leave unencrypted;
      only federated learning with encrypted exchanges is allowed.
    """

    OPEN = "open"
    AGGREGATES_ONLY = "aggregates_only"
    PRIVATE = "private"


class DataSilo:
    """A named collection of tables that (optionally) cannot be exported."""

    def __init__(self, name: str, privacy: PrivacyLevel = PrivacyLevel.OPEN):
        self.name = name
        self.privacy = privacy
        self._tables: Dict[str, Table] = {}

    def add_table(self, table: Table) -> None:
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError as exc:
            raise CatalogError(f"silo {self.name!r} has no table {name!r}") from exc

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- privacy checks -----------------------------------------------------------
    @property
    def allows_export(self) -> bool:
        return self.privacy is PrivacyLevel.OPEN

    @property
    def allows_factorized_pushdown(self) -> bool:
        return self.privacy in (PrivacyLevel.OPEN, PrivacyLevel.AGGREGATES_ONLY)

    def export_table(self, name: str) -> Table:
        """Export raw rows out of the silo, enforcing the privacy level."""
        if not self.allows_export:
            raise PrivacyError(
                f"silo {self.name!r} has privacy level {self.privacy.value!r}; "
                "raw rows may not leave the silo"
            )
        return self.table(name)

    def __repr__(self) -> str:
        return f"DataSilo({self.name!r}, privacy={self.privacy.value}, tables={self.table_names})"

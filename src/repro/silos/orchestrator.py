"""The central orchestrator coordinating computation over silos (paper §II-A).

The orchestrator owns the registry of silos and the simulated network.
It supports the two non-federated execution strategies of the optimizer:

* ``materialize_target`` — export the source tables out of their silos
  (privacy permitting), and account the transferred bytes;
* ``factorized_lmm`` / ``factorized_transpose_lmm`` — ship the (small)
  operand to each silo, let each silo compute its local contribution of
  the Eq. (2) rewrite, and ship only the partial results back.

Federated execution is handled by :mod:`repro.federated`, which also goes
through the simulated network for its message accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import CatalogError, PrivacyError
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.matrices.builder import IntegratedDataset
from repro.silos.network import SimulatedNetwork
from repro.silos.silo import DataSilo


class Orchestrator:
    """Registry of silos plus execution helpers that account network traffic."""

    ORCHESTRATOR = "orchestrator"

    def __init__(self, network: Optional[SimulatedNetwork] = None):
        self.network = network or SimulatedNetwork()
        self._silos: Dict[str, DataSilo] = {}
        self._table_to_silo: Dict[str, str] = {}

    # -- registry -------------------------------------------------------------------
    def register_silo(self, silo: DataSilo) -> None:
        self._silos[silo.name] = silo
        for table_name in silo.table_names:
            self._table_to_silo[table_name] = silo.name

    def register_table(self, silo_name: str, table_name: str) -> None:
        """Idempotently index one table of a registered silo.

        The table must already live in the silo; re-registering an
        existing index entry is a no-op, so callers adding tables one at a
        time don't have to re-register the whole silo.
        """
        silo = self.silo(silo_name)
        if table_name not in silo.table_names:
            raise CatalogError(
                f"silo {silo_name!r} holds no table named {table_name!r}"
            )
        self._table_to_silo[table_name] = silo_name

    def silo(self, name: str) -> DataSilo:
        try:
            return self._silos[name]
        except KeyError as exc:
            raise CatalogError(f"no silo named {name!r}") from exc

    def silo_of_table(self, table_name: str) -> DataSilo:
        try:
            return self._silos[self._table_to_silo[table_name]]
        except KeyError as exc:
            raise CatalogError(f"no registered silo holds table {table_name!r}") from exc

    @property
    def silo_names(self) -> List[str]:
        return sorted(self._silos)

    @property
    def table_names(self) -> List[str]:
        return sorted(self._table_to_silo)

    def all_tables(self):
        for table_name, silo_name in sorted(self._table_to_silo.items()):
            yield self._silos[silo_name].table(table_name)

    # -- materialized execution ------------------------------------------------------
    def export_sources(self, table_names: Sequence[str]) -> List:
        """Pull source tables to the orchestrator, enforcing privacy and
        accounting the transferred bytes."""
        tables = []
        for table_name in table_names:
            silo = self.silo_of_table(table_name)
            table = silo.export_table(table_name)
            self.network.send(
                silo.name, self.ORCHESTRATOR, f"table:{table_name}", table.to_matrix()
            )
            tables.append(table)
        return tables

    def materialize_target(self, dataset: IntegratedDataset) -> np.ndarray:
        """Materialize the target centrally: every source factor's data is
        shipped to the orchestrator first."""
        for factor in dataset.factors:
            silo_name = self._table_to_silo.get(factor.name, factor.name)
            silo = self._silos.get(silo_name)
            if silo is not None and not silo.allows_export:
                raise PrivacyError(
                    f"silo {silo.name!r} does not allow exporting table {factor.name!r}"
                )
            self.network.send(silo_name, self.ORCHESTRATOR, f"data:{factor.name}", factor.data)
        return dataset.materialize()

    # -- factorized execution --------------------------------------------------------
    def factorized_lmm(self, dataset: IntegratedDataset, operand: np.ndarray) -> np.ndarray:
        """Compute ``T @ X`` with per-silo local results (Eq. 2 pushdown)."""
        operand = np.asarray(operand, dtype=float)
        if operand.ndim == 1:
            operand = operand[:, None]
        self._check_pushdown_allowed(dataset)
        result = np.zeros((dataset.n_target_rows, operand.shape[1]))
        matrix = AmalurMatrix(dataset)
        for index, factor in enumerate(dataset.factors):
            silo_name = self._table_to_silo.get(factor.name, factor.name)
            # Operand travels to the silo, the (target-shaped) partial result
            # travels back. The partial result has r_T rows — this is the
            # communication cost factorization pays.
            self.network.send(self.ORCHESTRATOR, silo_name, "operand", operand)
            single = AmalurMatrix(
                IntegratedDataset(
                    target_columns=list(dataset.target_columns),
                    n_target_rows=dataset.n_target_rows,
                    factors=[factor],
                    scenario=dataset.scenario,
                    label_column=None,
                    name=dataset.name,
                )
            )
            partial = single.lmm(operand)
            self.network.send(silo_name, self.ORCHESTRATOR, "partial_lmm", partial)
            result += partial
        return result

    def factorized_transpose_lmm(self, dataset: IntegratedDataset, operand: np.ndarray) -> np.ndarray:
        """Compute ``Tᵀ @ X`` with per-silo local results."""
        operand = np.asarray(operand, dtype=float)
        if operand.ndim == 1:
            operand = operand[:, None]
        self._check_pushdown_allowed(dataset)
        result = np.zeros((len(dataset.target_columns), operand.shape[1]))
        for factor in dataset.factors:
            silo_name = self._table_to_silo.get(factor.name, factor.name)
            self.network.send(self.ORCHESTRATOR, silo_name, "operand", operand)
            single = AmalurMatrix(
                IntegratedDataset(
                    target_columns=list(dataset.target_columns),
                    n_target_rows=dataset.n_target_rows,
                    factors=[factor],
                    scenario=dataset.scenario,
                    label_column=None,
                    name=dataset.name,
                )
            )
            partial = single.transpose_lmm(operand)
            self.network.send(silo_name, self.ORCHESTRATOR, "partial_tlmm", partial)
            result += partial
        return result

    def _check_pushdown_allowed(self, dataset: IntegratedDataset) -> None:
        for factor in dataset.factors:
            silo_name = self._table_to_silo.get(factor.name)
            if silo_name is None:
                continue
            silo = self._silos[silo_name]
            if not silo.allows_factorized_pushdown:
                raise PrivacyError(
                    f"silo {silo.name!r} is {silo.privacy.value!r}; factorized pushdown of "
                    f"{factor.name!r} would leak derived aggregates — use federated learning"
                )

"""Quickstart: the paper's hospital running example, end to end.

Two departments of the same hospital keep separate tables:

* ``S1(m, n, a, hr)`` — the ER department's table with the mortality label;
* ``S2(m, n, a, o, dd)`` — the pulmonary department's table with the new
  blood-oxygen feature.

The script walks the Figure 3 workflow: register the silos, discover the
augmentation candidate, integrate (schema matching + entity resolution +
DI matrices), let the optimizer pick a strategy, and train the mortality
classifier.

Run with:  python examples/quickstart.py
"""

from repro import Amalur, ModelSpec, ScenarioType
from repro.datagen import hospital_tables


def main() -> None:
    s1, s2 = hospital_tables()

    amalur = Amalur()
    amalur.add_silo("er_department")
    amalur.add_table("er_department", s1)
    amalur.add_silo("pulmonary_department")
    amalur.add_table("pulmonary_department", s2)

    print("== data discovery (feature augmentation candidates for S1) ==")
    for candidate in amalur.discover("S1", label_column="m"):
        print(
            f"  {candidate.table_name}: joinability={candidate.joinability:.2f}, "
            f"new features={candidate.new_features}, score={candidate.score:.2f}"
        )

    print("\n== integration (full outer join, mediated schema T(m, a, hr, o)) ==")
    dataset = amalur.integrate(
        "S1", "S2", ["m", "a", "hr", "o"], ScenarioType.FULL_OUTER_JOIN, label_column="m"
    )
    print(f"  target shape: {dataset.shape}")
    print(f"  recorded column matches: "
          f"{[(m.left_column, m.right_column) for m in amalur.catalog.di_metadata('S1', 'S2').column_matches]}")
    print("  materialized target table (Figure 2d):")
    for row in dataset.materialize():
        print("   ", "  ".join(f"{value:5.0f}" for value in row))

    print("\n== optimizer plan ==")
    spec = ModelSpec(task="classification", learning_rate=0.01, n_iterations=100)
    plan = amalur.plan(dataset, spec)
    print(plan.describe())

    print("\n== training ==")
    result = amalur.train(dataset, spec, plan=plan)
    print(f"  strategy used      : {result.strategy.value}")
    print(f"  metrics            : {result.metrics}")
    print(f"  silo-boundary bytes: {result.bytes_transferred}")
    print(f"  registered models  : {amalur.catalog.model_names}")


if __name__ == "__main__":
    main()

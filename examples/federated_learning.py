"""Federated learning with DI metadata (use case 2, §V).

Two hospitals hold vertically-partitioned data about (partially) the same
patients and cannot export raw rows. The script:

1. aligns the patients with a PSI-style private entity alignment (the
   indicator-matrix information of §III-B);
2. trains a vertical federated linear regression with the simulated
   additively-homomorphic encryption layer, reporting the communication
   and encryption overheads (§V-B);
3. verifies the federated model equals centralized training on the
   (hypothetically) pooled data;
4. runs the horizontal (union / FedAvg) variant for completeness.

Run with:  python examples/federated_learning.py
"""

import numpy as np

from repro.federated import (
    FederatedAveraging,
    Party,
    VerticalFederatedLinearRegression,
    build_alignment,
)
from repro.learning import LinearRegression
from repro.silos.network import SimulatedNetwork


def vertical_example() -> None:
    print("== vertical federated learning (inner-join scenario) ==")
    rng = np.random.default_rng(42)
    n_shared, n_only_a, n_only_b = 800, 150, 120

    shared_ids = [f"patient_{i}" for i in range(n_shared)]
    ids_a = shared_ids + [f"a_only_{i}" for i in range(n_only_a)]
    ids_b = [f"b_only_{i}" for i in range(n_only_b)] + shared_ids

    features_a = rng.standard_normal((len(ids_a), 3))
    features_b = rng.standard_normal((len(ids_b), 5))
    true_weights = rng.standard_normal(8)

    # Labels live with hospital A and depend on both hospitals' features.
    aligned_b = features_b[[ids_b.index(i) for i in ids_a if i in set(ids_b)]]
    labels_a = np.zeros(len(ids_a))
    labels_a[:n_shared] = (
        np.hstack([features_a[:n_shared], aligned_b]) @ true_weights
        + 0.05 * rng.standard_normal(n_shared)
    )

    hospital_a = Party("hospital_a", features_a, ["age", "bmi", "heart_rate"],
                       labels=labels_a, entity_ids=ids_a)
    hospital_b = Party("hospital_b", features_b,
                       ["oxygen", "glucose", "creatinine", "sodium", "potassium"],
                       entity_ids=ids_b)

    alignment = build_alignment([hospital_a, hospital_b])
    print(f"  privately aligned patients: {len(alignment['hospital_a'])} "
          f"(of {len(ids_a)} in A and {len(ids_b)} in B)")

    network = SimulatedNetwork()
    model = VerticalFederatedLinearRegression(
        learning_rate=0.05, n_iterations=200, use_encryption=True, network=network
    ).fit([hospital_a, hospital_b], alignment=alignment)
    report = model.report_
    print(f"  final training MSE       : {report.final_loss:.4f}")
    print(f"  messages / bytes         : {report.n_messages} / {report.bytes_transferred:,}")
    print(f"  homomorphic operations   : {report.encryption_operations:,}")

    # Centralized reference on the pooled (aligned) data.
    pooled = np.hstack(
        [
            hospital_a.aligned_features(alignment["hospital_a"]),
            hospital_b.aligned_features(alignment["hospital_b"]),
        ]
    )
    central = LinearRegression(solver="gd", learning_rate=0.05, n_iterations=200,
                               fit_intercept=False).fit(
        pooled, hospital_a.aligned_labels(alignment["hospital_a"])
    )
    gap = np.max(np.abs(model.centralized_equivalent_weights() - central.coef_))
    print(f"  max |w_federated − w_centralized| = {gap:.2e}")


def horizontal_example() -> None:
    print("\n== horizontal federated learning (union scenario, FedAvg) ==")
    rng = np.random.default_rng(7)
    weights = np.array([1.5, -2.0, 0.8, 0.3])
    parties = []
    for index, n_rows in enumerate((300, 500, 250)):
        features = rng.standard_normal((n_rows, 4))
        labels = (features @ weights + 0.1 * rng.standard_normal(n_rows) > 0).astype(float)
        parties.append(
            Party(f"clinic_{index}", features, ["f0", "f1", "f2", "f3"], labels=labels)
        )
    model = FederatedAveraging(model="logistic", n_rounds=60, local_epochs=2,
                               learning_rate=0.5).fit(parties)
    all_features = np.vstack([p.data for p in parties])
    all_labels = np.concatenate([p.labels for p in parties])
    accuracy = float(np.mean(model.predict(all_features) == all_labels))
    print(f"  silos: {[p.name for p in parties]}")
    print(f"  global accuracy after FedAvg: {accuracy:.3f}")
    print(f"  communication: {model.report_.n_messages} messages, "
          f"{model.report_.bytes_transferred:,} bytes")


if __name__ == "__main__":
    vertical_example()
    horizontal_example()

"""To factorize or to materialize? (paper §IV-B, Figure 5, Table III)

The script sweeps a family of two-silo integration shapes, asks both
decision procedures (the Morpheus tuple/feature-ratio heuristic and the
Amalur DI-metadata cost model) what they would do, measures which strategy
actually runs an LMM training workload faster, and prints the resulting
decision map — a miniature of the Table III experiment you can read in a
few seconds.

Run with:  python examples/cost_advisor.py
"""

import time

import numpy as np

from repro.costmodel import AmalurCostModel, CostParameters, MorpheusRule
from repro.datagen import SyntheticSiloSpec, generate_integrated_pair
from repro.factorized import AmalurMatrix

REUSE = 10
OPERAND_COLUMNS = 4


def measure(dataset) -> float:
    """Return measured factorization speedup (>1 means factorize wins)."""
    matrix = AmalurMatrix(dataset)
    operand = np.random.default_rng(0).standard_normal((matrix.n_columns, OPERAND_COLUMNS))
    start = time.perf_counter()
    for _ in range(REUSE):
        matrix.lmm(operand)
    factorized = time.perf_counter() - start
    start = time.perf_counter()
    target = dataset.materialize()
    for _ in range(REUSE):
        target @ operand
    materialized = time.perf_counter() - start
    return materialized / factorized


def main() -> None:
    configurations = [
        ("tiny lookup table, huge fact table", dict(base_rows=100_000, base_columns=2,
                                                    other_rows=500, other_columns=80,
                                                    redundancy_in_target=True)),
        ("balanced one-to-one inner join", dict(base_rows=20_000, base_columns=40,
                                                other_rows=20_000, other_columns=40,
                                                redundancy_in_target=False)),
        ("small augmentation of a small base", dict(base_rows=2_000, base_columns=5,
                                                    other_rows=500, other_columns=10,
                                                    redundancy_in_target=True)),
        ("wide dimension, moderate reuse", dict(base_rows=30_000, base_columns=1,
                                                other_rows=3_000, other_columns=120,
                                                redundancy_in_target=True)),
        ("overlapping columns (source redundancy)", dict(base_rows=50_000, base_columns=10,
                                                         other_rows=1_000, other_columns=60,
                                                         redundancy_in_target=True,
                                                         redundancy_in_sources=True)),
    ]
    amalur_model = AmalurCostModel(reuse=REUSE)
    morpheus_rule = MorpheusRule()

    header = f"{'configuration':>42} | {'measured':>9} | {'Amalur':>7} | {'Morpheus':>8}"
    print(header)
    print("-" * len(header))
    for label, kwargs in configurations:
        dataset = generate_integrated_pair(SyntheticSiloSpec(seed=1, **kwargs))
        parameters = CostParameters.from_dataset(dataset, operand_columns=OPERAND_COLUMNS)
        speedup = measure(dataset)
        measured = "factorize" if speedup > 1 else "materialize"
        amalur = "factorize" if amalur_model.predict_factorize(parameters) else "materialize"
        morpheus = "factorize" if morpheus_rule.predict_factorize(parameters) else "materialize"
        print(f"{label:>42} | {measured:>9} | {amalur:>7} | {morpheus:>8}   "
              f"(speedup {speedup:4.2f}×, tuple ratio {parameters.source_tuple_ratio:5.1f})")

    print("\nAmalur's cost model sees the DI metadata (actual target shape, overlap,")
    print("redundancy); the Morpheus heuristic only sees the source shapes, which is")
    print("why it keeps recommending factorization even when the integrated target")
    print("is no larger than the sources (paper §IV-B, Table III).")


if __name__ == "__main__":
    main()

"""Feature augmentation over silos with factorized training (use case 1, §II-B).

A larger synthetic scenario: a base table with a label and a few features
lives in one silo, a discovered table with overlapping entities and new
features lives in another. The script compares the two execution
strategies the Amalur optimizer chooses between:

* materialize the target table centrally and train on it;
* keep the data factorized and push the model's LMM / transpose-LMM down
  to the silos (Eq. 2 of the paper),

and shows that both produce the same model while moving very different
amounts of data across silo boundaries.

Run with:  python examples/feature_augmentation.py
"""

import time

import numpy as np

from repro.costmodel.parameters import CostParameters
from repro.costmodel import AmalurCostModel, MorpheusRule
from repro.datagen import SyntheticSiloSpec, generate_integrated_pair
from repro.factorized import AmalurMatrix
from repro.learning import DenseMatrix, LinearRegression


def main() -> None:
    # A key–foreign-key style integration: 80k base rows reference 2k rows of
    # the discovered table, which brings 60 new feature columns.
    spec = SyntheticSiloSpec(
        base_rows=80_000,
        base_columns=2,
        other_rows=2_000,
        other_columns=60,
        redundancy_in_target=True,
        redundancy_in_sources=False,
        seed=7,
    )
    dataset = generate_integrated_pair(spec)
    matrix = AmalurMatrix(dataset)
    print(f"integrated dataset: {dataset.shape[0]} rows × {dataset.shape[1]} columns, "
          f"{dataset.n_sources} sources")
    print(f"tuple ratio = {dataset.tuple_ratio():.1f}, feature ratio = {dataset.feature_ratio():.2f}")

    # Synthesise a label from the (virtual) target so both strategies share it.
    target = dataset.materialize()
    rng = np.random.default_rng(0)
    weights = rng.standard_normal(target.shape[1])
    labels = target @ weights + 0.1 * rng.standard_normal(target.shape[0])

    print("\n== cost model advice ==")
    parameters = CostParameters.from_dataset(dataset, operand_columns=1)
    print("  Amalur cost model :", AmalurCostModel(reuse=50).explain(parameters))
    print("  Morpheus heuristic:", MorpheusRule().explain(parameters),
          "→", "factorize" if MorpheusRule().predict_factorize(parameters) else "materialize")

    print("\n== factorized training (model pushed down to the silos) ==")
    start = time.perf_counter()
    factorized_model = LinearRegression(
        solver="gd", learning_rate=0.05, n_iterations=50, fit_intercept=False
    ).fit(matrix, labels)
    factorized_time = time.perf_counter() - start
    print(f"  {factorized_time*1000:.0f} ms, final loss {factorized_model.loss_history_[-1]:.4f}")

    print("\n== materialized training (target exported and joined centrally) ==")
    start = time.perf_counter()
    materialized_model = LinearRegression(
        solver="gd", learning_rate=0.05, n_iterations=50, fit_intercept=False
    ).fit(DenseMatrix(target), labels)
    materialized_time = time.perf_counter() - start
    print(f"  {materialized_time*1000:.0f} ms, final loss {materialized_model.loss_history_[-1]:.4f}")

    print("\n== comparison ==")
    print(f"  max |w_factorized − w_materialized| = "
          f"{np.max(np.abs(factorized_model.coef_ - materialized_model.coef_)):.2e}")
    print(f"  factorized speedup: {materialized_time / factorized_time:.2f}×")
    print(f"  bytes that stay inside the silos under factorization: "
          f"{sum(f.data.nbytes for f in dataset.factors):,} "
          f"(vs {target.nbytes:,} exported when materializing)")


if __name__ == "__main__":
    main()
